(* Determinism suite for the multicore execution layer: every solver and
   engine entry point must produce bit-identical results for every pool
   size (the Pool determinism contract), plus chunking edge cases and
   pool mechanics. *)

module G = Repro_graph.Multigraph
module Gen = Repro_graph.Generators
module Pool = Repro_local.Pool
module Instance = Repro_local.Instance
module MP = Repro_local.Message_passing
module DC = Repro_lcl.Distributed_check
module SO = Repro_problems.Sinkless_orientation
module Coloring = Repro_problems.Coloring
module Mis = Repro_problems.Mis
module Matching = Repro_problems.Matching
module GB = Repro_gadget.Build
module GL = Repro_gadget.Labels
module Corrupt = Repro_gadget.Corrupt
module V = Repro_gadget.Verifier

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let sizes = [ 2; 4 ]

(* run [compute] sequentially, then at 2 and 4 domains, and require
   structural equality of the results; always restores size 1 *)
let across_sizes name compute =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 1;
      let base = compute () in
      List.iter
        (fun s ->
          Pool.set_size s;
          check (Printf.sprintf "%s: %d domains = sequential" name s) true
            (base = compute ()))
        sizes)

(* ------------------------------------------------------------------ *)
(* pool mechanics                                                     *)
(* ------------------------------------------------------------------ *)

let test_parallel_for_covers () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      List.iter
        (fun s ->
          Pool.set_size s;
          (* n = 0, n < domain count, n < cutoff, chunk boundaries *)
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              Pool.parallel_for ~n (fun i -> hits.(i) <- hits.(i) + 1);
              for i = 0 to n - 1 do
                check_int (Printf.sprintf "size %d n %d hit %d" s n i) 1
                  hits.(i)
              done)
            [ 0; 1; 2; 3; 15; 16; 17; 100; 1000 ])
        (1 :: sizes))

let test_chunk_edge_cases () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 4;
      (* one chunk larger than the range: workers find nothing to steal *)
      let hits = Array.make 20 0 in
      Pool.parallel_for ~chunk:64 ~n:20 (fun i -> hits.(i) <- hits.(i) + 1);
      check "chunk > n covers" true (Array.for_all (fun c -> c = 1) hits);
      (* chunk of 1: more chunks than domains *)
      let hits = Array.make 33 0 in
      Pool.parallel_for ~chunk:1 ~n:33 (fun i -> hits.(i) <- hits.(i) + 1);
      check "chunk = 1 covers" true (Array.for_all (fun c -> c = 1) hits);
      (* n smaller than the domain count *)
      let hits = Array.make 2 0 in
      Pool.parallel_for ~chunk:1 ~n:2 (fun i -> hits.(i) <- hits.(i) + 1);
      check "n < domains covers" true (Array.for_all (fun c -> c = 1) hits))

let test_reduce () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      List.iter
        (fun s ->
          Pool.set_size s;
          List.iter
            (fun n ->
              let sum =
                Pool.parallel_for_reduce ~n ~neutral:0 ~combine:( + )
                  (fun i -> i)
              in
              check_int (Printf.sprintf "sum size %d n %d" s n)
                (n * (n - 1) / 2)
                sum;
              let mx =
                Pool.parallel_for_reduce ~n ~neutral:min_int ~combine:max
                  (fun i -> (i * 7919) mod 1009)
              in
              let seq_mx = ref min_int in
              for i = 0 to n - 1 do
                seq_mx := max !seq_mx ((i * 7919) mod 1009)
              done;
              check_int (Printf.sprintf "max size %d n %d" s n) !seq_mx mx)
            [ 0; 1; 7; 64; 1000 ])
        (1 :: sizes))

let test_tabulate () =
  across_sizes "tabulate" (fun () ->
      Pool.tabulate 777 (fun i -> (i * i) - (3 * i)))

let test_exception_propagates () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 4;
      check "body exception reraised" true
        (try
           Pool.parallel_for ~n:1000 (fun i ->
               if i = 500 then failwith "boom");
           false
         with Failure m -> m = "boom");
      (* the pool survives a failed job *)
      let sum =
        Pool.parallel_for_reduce ~n:100 ~neutral:0 ~combine:( + ) (fun i -> i)
      in
      check_int "pool usable after failure" 4950 sum)

let test_nested_falls_back () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 2;
      let hits = Array.make 4096 0 in
      Pool.parallel_for ~n:64 (fun i ->
          (* a loop issued from inside a running body must degrade to a
             sequential loop, not deadlock *)
          Pool.parallel_for ~n:64 (fun j ->
              let k = (64 * i) + j in
              hits.(k) <- hits.(k) + 1));
      check "nested loops cover" true (Array.for_all (fun c -> c = 1) hits))

(* ------------------------------------------------------------------ *)
(* engine and solver equality                                         *)
(* ------------------------------------------------------------------ *)

let so_instance ?(n = 120) ?(seed = 3) () =
  let rng = Random.State.make [| 41 + n + seed |] in
  Instance.create ~seed (SO.hard_instance rng ~n)

let test_message_passing_equal () =
  (* id-flooding eccentricity: states are lists, exercises send/receive *)
  let ecc : (int list * int, int list, int) MP.algorithm =
    {
      MP.init = (fun inst v -> ([ Instance.id inst v ], 0));
      send = (fun (known, _) ~round:_ ~port:_ -> known);
      receive =
        (fun (known, stable) ~round:_ msgs ->
          let fresh =
            Array.fold_left
              (fun acc l ->
                List.filter (fun x -> not (List.mem x known)) l @ acc)
              [] msgs
            |> List.sort_uniq compare
          in
          if fresh = [] then Either.Right stable
          else Either.Left (fresh @ known, stable + 1));
    }
  in
  across_sizes "mp ecc" (fun () ->
      let r = MP.run (so_instance ~n:60 ()) ecc in
      (r.MP.outputs, r.MP.rounds, r.MP.max_rounds))

let test_flood_gather_equal () =
  across_sizes "flood_gather" (fun () ->
      MP.flood_gather (so_instance ~n:60 ()) ~radius:4 (fun v -> v))

let test_so_deterministic_equal () =
  across_sizes "so det" (fun () -> SO.solve_deterministic (so_instance ()))

let test_so_randomized_equal () =
  across_sizes "so rand" (fun () -> SO.solve_randomized (so_instance ()))

let mixed_graph () =
  let rng = Random.State.make [| 97 |] in
  Gen.random_simple_regular rng ~n:90 ~d:4

let test_coloring_equal () =
  across_sizes "coloring" (fun () ->
      Coloring.solve (Instance.create (mixed_graph ())))

let test_mis_equal () =
  across_sizes "mis" (fun () -> Mis.solve (Instance.create (mixed_graph ())))

let test_matching_equal () =
  across_sizes "matching" (fun () ->
      Matching.solve (Instance.create (mixed_graph ())))

let test_network_decomposition_equal () =
  let inst = Instance.create ~seed:5 (mixed_graph ()) in
  across_sizes "linial-saks" (fun () ->
      Repro_problems.Network_decomposition.linial_saks inst ~p:0.5);
  across_sizes "greedy decomposition" (fun () ->
      Repro_problems.Network_decomposition.greedy inst)

let test_two_coloring_equal () =
  (* the global-complexity row: an even cycle plus a bipartite random
     instance, both must be pool-size invariant *)
  let cycle = Repro_problems.Two_coloring.hard_instance ~n:64 in
  across_sizes "two-coloring cycle" (fun () ->
      Repro_problems.Two_coloring.solve (Instance.create ~seed:9 cycle));
  let tree = Gen.balanced_tree ~arity:2 ~height:5 in
  across_sizes "two-coloring tree" (fun () ->
      Repro_problems.Two_coloring.solve (Instance.create ~seed:11 tree))

let test_verifier_equal () =
  let delta = 3 in
  let valid = GB.gadget ~delta ~height:5 in
  let rng = Random.State.make [| 13 |] in
  let corrupted, _ = Corrupt.random rng valid in
  List.iter
    (fun (label, gadget) ->
      across_sizes
        (Printf.sprintf "verifier %s" label)
        (fun () ->
          V.run ~delta ~n:(G.n gadget.GL.graph) gadget))
    [ ("valid", valid); ("corrupted", corrupted) ]

let test_distributed_check_equal () =
  let inst = so_instance ~n:100 () in
  let g = inst.Instance.graph in
  let out, _ = SO.solve_deterministic inst in
  across_sizes "distributed check" (fun () ->
      let v = DC.run SO.problem inst ~input:(SO.trivial_input g) ~output:out in
      (v.DC.accepts, v.DC.all_accept, v.DC.rounds))

(* ------------------------------------------------------------------ *)
(* adaptive dispatch: autotuner invariance, round batching, arming    *)
(* ------------------------------------------------------------------ *)

module Obs = Repro_obs

(* run [f] with free rein over the dispatch knobs, restoring the
   suite-wide configuration (size 1, no grain override, whatever mode
   test_main armed) however [f] exits *)
let with_dispatch_config f =
  let mode0 = Pool.dispatch_mode () in
  Fun.protect
    ~finally:(fun () ->
      Pool.set_size 1;
      Pool.set_grain_override None;
      Pool.set_dispatch_mode mode0)
    f

let dispatch_modes =
  [ ("auto", Pool.Auto); ("always", Pool.Always); ("work1k", Pool.Work_ns 1000) ]

let grain_overrides = [ ("default", None); ("g1", Some 1); ("gN", Some 1_000_000) ]

let test_autotuner_invariance () =
  (* the tentpole contract: cutoff decisions, grain choices and the EMA
     the autotuner accumulates may move work between domains, never
     change a result. Every (mode, grain, size) cell runs twice — the
     first run feeds the EMA, so the second run's schedule may differ,
     and both must equal the sequential base. *)
  let inst = so_instance ~n:120 () in
  let g = inst.Instance.graph in
  let compute () =
    let out, rounds = SO.solve_deterministic inst in
    let v = DC.run SO.problem inst ~input:(SO.trivial_input g) ~output:out in
    (out, rounds, v.DC.accepts, v.DC.all_accept, v.DC.rounds)
  in
  with_dispatch_config (fun () ->
      Pool.set_size 1;
      Pool.set_grain_override None;
      Pool.set_dispatch_mode Pool.Always;
      let base = compute () in
      List.iter
        (fun (mname, mode) ->
          List.iter
            (fun (gname, grain) ->
              List.iter
                (fun s ->
                  Pool.set_size s;
                  Pool.set_dispatch_mode mode;
                  Pool.set_grain_override grain;
                  for rep = 1 to 2 do
                    check
                      (Printf.sprintf "%s/%s/size %d rep %d = sequential"
                         mname gname s rep)
                      true
                      (base = compute ())
                  done)
                [ 1; 2; 4 ])
            grain_overrides)
        dispatch_modes)

let test_autotuner_obs_invariance () =
  (* the observability byte-identity half of the contract: deterministic
     trace projections and provenance certificates may not depend on the
     grain, the pool size, or EMA state accumulated by earlier runs *)
  let inst = so_instance ~n:100 () in
  let g = inst.Instance.graph in
  let out, _ = SO.solve_deterministic inst in
  let traced () =
    Obs.Trace.start ~label:"autotune" ~n:(G.n g) ();
    Fun.protect
      ~finally:(fun () -> Obs.Registry.disable ())
      (fun () ->
        ignore (DC.run SO.problem inst ~input:(SO.trivial_input g) ~output:out);
        Obs.Trace.finish ())
  in
  let audited () =
    snd (DC.audited_run SO.problem inst ~input:(SO.trivial_input g) ~output:out)
  in
  with_dispatch_config (fun () ->
      Pool.set_size 1;
      Pool.set_grain_override None;
      Pool.set_dispatch_mode Pool.Always;
      let base_trace = traced () in
      let base_cert = audited () in
      check "base certificate ok" true base_cert.Obs.Provenance.c_ok;
      List.iter
        (fun (gname, grain) ->
          List.iter
            (fun s ->
              Pool.set_size s;
              Pool.set_grain_override grain;
              check
                (Printf.sprintf "trace projection %s size %d" gname s)
                true
                (Obs.Trace.deterministic_equal base_trace (traced ()));
              check
                (Printf.sprintf "provenance cert %s size %d" gname s)
                true
                (base_cert = audited ()))
            [ 1; 2; 4 ])
        grain_overrides)

let test_run_rounds_equal () =
  (* round batching: a resident-worker session is a scheduling hint,
     never a semantic one *)
  let inst = so_instance ~n:100 () in
  across_sizes "run_rounds so det" (fun () ->
      let direct = SO.solve_deterministic inst in
      let batched = Pool.run_rounds (fun () -> SO.solve_deterministic inst) in
      check "in-session = out of session" true (direct = batched);
      batched)

let test_run_rounds_exception_safe () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 4;
      (* an exception from a loop inside the session propagates *)
      check "loop exception propagates" true
        (try
           Pool.run_rounds (fun () ->
               Pool.parallel_for ~n:1000 (fun i ->
                   if i = 77 then failwith "bang"));
           false
         with Failure m -> m = "bang");
      (* ... as does one from the session body itself *)
      check "body exception propagates" true
        (try Pool.run_rounds (fun () -> failwith "direct")
         with Failure m -> m = "direct");
      (* the workers leave residency however the session ended: both a
         fresh session and a bare loop still work and still cover *)
      let s =
        Pool.run_rounds (fun () ->
            Pool.parallel_for_reduce ~n:100 ~neutral:0 ~combine:( + )
              (fun i -> i))
      in
      check_int "session after failure" 4950 s;
      let s' =
        Pool.parallel_for_reduce ~n:100 ~neutral:0 ~combine:( + ) (fun i -> i)
      in
      check_int "bare loop after failure" 4950 s')

let test_run_rounds_nested () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 2;
      let r =
        Pool.run_rounds (fun () ->
            Pool.run_rounds (fun () ->
                Pool.parallel_for_reduce ~n:64 ~neutral:0 ~combine:( + )
                  (fun i -> i)))
      in
      check_int "nested sessions compute" 2016 r;
      (* leaving the inner session must not evict the outer one's
         residency: a loop after the inner exit still covers *)
      let r' =
        Pool.run_rounds (fun () ->
            Pool.run_rounds (fun () -> ()) |> ignore;
            Pool.parallel_for_reduce ~n:64 ~neutral:0 ~combine:( + )
              (fun i -> i))
      in
      check_int "loop after inner session exit" 2016 r')

let test_pool_counters_armed_per_job () =
  (* regression for the per-job arming latch: whether a job records
     chunk telemetry is decided once at dispatch, so a job dispatched
     while the registry is disarmed must leave every pool counter
     untouched, and an armed job must account each chunk and each index
     exactly once *)
  let reg = Obs.Registry.ambient () in
  let chunks = Obs.Registry.counter reg "local.pool.chunks" in
  let par_idx = Obs.Registry.counter reg "local.pool.par_idx" in
  let chunk_ns = Obs.Registry.counter reg "local.pool.chunk_ns" in
  with_dispatch_config (fun () ->
      Pool.set_size 4;
      Pool.set_dispatch_mode Pool.Always;
      Fun.protect
        ~finally:(fun () -> Obs.Registry.disable ())
        (fun () ->
          Obs.Registry.disable ();
          let c0 = Obs.Counter.value chunks in
          let p0 = Obs.Counter.value par_idx in
          let t0 = Obs.Counter.value chunk_ns in
          Pool.parallel_for ~chunk:8 ~n:512 (fun _ -> ());
          check_int "disarmed: chunks untouched" c0 (Obs.Counter.value chunks);
          check_int "disarmed: par_idx untouched" p0
            (Obs.Counter.value par_idx);
          check_int "disarmed: chunk_ns untouched" t0
            (Obs.Counter.value chunk_ns);
          Obs.Registry.enable ();
          let c1 = Obs.Counter.value chunks in
          let p1 = Obs.Counter.value par_idx in
          Pool.parallel_for ~chunk:8 ~n:512 (fun _ -> ());
          Obs.Registry.disable ();
          check "armed: chunks advanced" true (Obs.Counter.value chunks > c1);
          check_int "armed: par_idx counts each index once" (p1 + 512)
            (Obs.Counter.value par_idx)))

let suite =
  [
    ("parallel_for covers every index once", `Quick, test_parallel_for_covers);
    ("chunking edge cases", `Quick, test_chunk_edge_cases);
    ("parallel_for_reduce", `Quick, test_reduce);
    ("tabulate = Array.init", `Quick, test_tabulate);
    ("exceptions propagate, pool survives", `Quick, test_exception_propagates);
    ("nested loops fall back", `Quick, test_nested_falls_back);
    ("engine: outputs/rounds equal", `Quick, test_message_passing_equal);
    ("engine: flood_gather equal", `Quick, test_flood_gather_equal);
    ("SO deterministic equal", `Quick, test_so_deterministic_equal);
    ("SO randomized equal", `Quick, test_so_randomized_equal);
    ("coloring equal", `Quick, test_coloring_equal);
    ("MIS equal", `Quick, test_mis_equal);
    ("matching equal", `Quick, test_matching_equal);
    ("network decomposition equal", `Quick, test_network_decomposition_equal);
    ("two-coloring equal", `Quick, test_two_coloring_equal);
    ("gadget verifier equal", `Quick, test_verifier_equal);
    ("distributed checker equal", `Quick, test_distributed_check_equal);
    ("autotuner invariance across modes/grains", `Quick, test_autotuner_invariance);
    ("autotuner trace/cert invariance", `Quick, test_autotuner_obs_invariance);
    ("run_rounds determinism", `Quick, test_run_rounds_equal);
    ("run_rounds exception safety", `Quick, test_run_rounds_exception_safe);
    ("run_rounds nesting", `Quick, test_run_rounds_nested);
    ("pool counters armed per job", `Quick, test_pool_counters_armed_per_job);
  ]
