(* Tests for the frontier layer: Frontier_set representation and
   expansion, the fused pool primitive, the frontier engine's
   byte-identity with the flat engine (including the sparse↔dense
   switch, pinned on a golden instance), the audit-catalog certificate
   equivalence between engines, the flood_gather changed-set path, and
   the wave SO solver. *)

module Obs = Repro_obs
module Prov = Repro_obs.Provenance
module G = Repro_graph.Multigraph
module Gen = Repro_graph.Generators
module Instance = Repro_local.Instance
module Pool = Repro_local.Pool
module FS = Repro_local.Frontier_set
module Frontier = Repro_local.Frontier
module MP = Repro_local.Message_passing
module Audit = Repro_local.Audit
module SO = Repro_problems.Sinkless_orientation
module AC = Repro_problems.Audit_catalog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_pool_size s f =
  let saved = Pool.size () in
  Fun.protect
    ~finally:(fun () -> Pool.set_size saved)
    (fun () ->
      Pool.set_size s;
      f ())

(* ------------------------------------------------------------------ *)
(* Frontier_set *)

let test_set_basics () =
  let s = FS.create 130 in
  check_int "empty" 0 (FS.cardinal s);
  check_int "length" 130 (FS.length s);
  let members = [ 5; 0; 63; 64; 129; 62 ] in
  List.iter (FS.add s) members;
  FS.add s 63;
  check_int "re-add ignored" (List.length members) (FS.cardinal s);
  List.iteri
    (fun k v -> check_int (Printf.sprintf "member %d" k) v (FS.member s k))
    members;
  check "mem hit" true (FS.mem s 64);
  check "mem miss" false (FS.mem s 1);
  (* dense view agrees with the member list, ascending within words *)
  let via_words = ref [] in
  let total = ref 0 in
  for w = 0 to FS.word_count s - 1 do
    total :=
      !total
      + FS.fold_word s w 0 (fun acc v ->
            via_words := v :: !via_words;
            acc + 1)
  done;
  check_int "fold_word count" (List.length members) !total;
  Alcotest.(check (list int))
    "bitmap view" (List.sort compare members)
    (List.rev !via_words);
  FS.remove_if s (fun v -> v mod 2 = 0);
  Alcotest.(check (list int))
    "remove_if keeps order"
    (List.filter (fun v -> v mod 2 = 1) members)
    (List.init (FS.cardinal s) (FS.member s));
  check "removed from bitmap" false (FS.mem s 64);
  FS.clear s;
  check_int "cleared" 0 (FS.cardinal s);
  check "cleared bitmap" false (FS.mem s 63);
  FS.fill_all s;
  check_int "fill_all" 130 (FS.cardinal s);
  check_int "fill_all order" 17 (FS.member s 17)

let test_set_threshold () =
  let s = FS.create ~dense_threshold:0 4 in
  check "threshold 0 is always dense" true (FS.is_dense s);
  let s' = FS.create ~dense_threshold:5 4 in
  FS.fill_all s';
  check "threshold n+1 is never dense" false (FS.is_dense s')

let test_set_expand () =
  (* path 0-1-2-3-4: expanding {1,3} finds {0,2,4} in first-discovery
     order, scanning deg(1)+deg(3) = 4 halves *)
  let g = Gen.path 5 in
  let src = FS.create 5 and dst = FS.create 5 in
  let s = FS.scratch () in
  FS.add src 1;
  FS.add src 3;
  let edges = FS.expand ~g ~src ~dst s in
  check_int "edges scanned" 4 edges;
  Alcotest.(check (list int))
    "candidates in discovery order" [ 0; 2; 4 ]
    (List.init (FS.cardinal dst) (FS.member dst));
  (* keep-filter, and scratch reuse on a second expansion *)
  let edges = FS.expand ~g ~keep:(fun v -> v <> 2) ~src ~dst s in
  check_int "edges scanned again" 4 edges;
  Alcotest.(check (list int))
    "kept candidates" [ 0; 4 ]
    (List.init (FS.cardinal dst) (FS.member dst))

(* ------------------------------------------------------------------ *)
(* fused pool primitive *)

let test_fused () =
  let body i = (i * i) + 1 in
  let expected n =
    let s = ref 0 in
    for i = 0 to n - 1 do
      s := !s + body i
    done;
    !s
  in
  let t = Pool.fused body in
  List.iter
    (fun size ->
      with_pool_size size (fun () ->
          (* reuse one fused task across many sizes, below and above the
             sequential cutoff *)
          List.iter
            (fun n ->
              check_int
                (Printf.sprintf "sum n=%d at %d domains" n size)
                (expected n)
                (Pool.run_fused t ~n))
            [ 0; 1; 7; 16; 100; 1001 ]))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* the frontier engine vs the flat engine *)

(* the golden switch instance: a 160-node path flooded with
   actual v = v + 1, so node v halts after round v and the live count
   at round r is exactly 160 - r. The default density threshold is
   160/16 = 10: rounds 0..150 (live >= 10) must run dense, rounds
   151..159 sparse. *)
let test_switch_round_pinned () =
  let n = 160 in
  let inst = Instance.create (Gen.path n) in
  let alg = Audit.flood_algorithm ~actual:(fun v -> v + 1) in
  let res = Frontier.run inst alg in
  check_int "rounds" n res.Frontier.max_rounds;
  let st = res.Frontier.stats in
  check_int "one stats row per round" n (Array.length st.FS.Stats.active_nodes);
  for r = 0 to n - 1 do
    check_int
      (Printf.sprintf "active at round %d" r)
      (n - r)
      st.FS.Stats.active_nodes.(r);
    check
      (Printf.sprintf "mode at round %d" r)
      (n - r >= 10)
      st.FS.Stats.dense_rounds.(r)
  done;
  (* the path's live prefix loses one node per round: scanned half-edges
     strictly decrease once the wavefront moves *)
  for r = 1 to n - 1 do
    check
      (Printf.sprintf "edges shrink at round %d" r)
      true
      (st.FS.Stats.frontier_edges.(r) <= st.FS.Stats.frontier_edges.(r - 1))
  done;
  (* forcing the threshold to either extreme changes the mode profile
     but not one byte of the results *)
  let dense = Frontier.run ~dense_threshold:0 inst alg in
  let sparse = Frontier.run ~dense_threshold:(n + 1) inst alg in
  check "always-dense outputs" true (dense.Frontier.outputs = res.Frontier.outputs);
  check "always-sparse outputs" true
    (sparse.Frontier.outputs = res.Frontier.outputs);
  check "always-dense rounds" true (dense.Frontier.rounds = res.Frontier.rounds);
  check "always-sparse rounds" true
    (sparse.Frontier.rounds = res.Frontier.rounds);
  check "always-dense ran dense" true
    (Array.for_all Fun.id dense.Frontier.stats.FS.Stats.dense_rounds);
  check "always-sparse ran sparse" true
    (Array.for_all not sparse.Frontier.stats.FS.Stats.dense_rounds);
  (* and the flat engine agrees with all of them *)
  let flat = MP.run inst alg in
  check "flat outputs" true (flat.MP.outputs = res.Frontier.outputs);
  check "flat rounds" true (flat.MP.rounds = res.Frontier.rounds)

(* certificate equivalence across the audit catalog: replaying an
   entry's declared radii on the frontier engine must produce the same
   certificate as the flat engine, modulo the engine tag — at 1, 2 and
   4 domains *)
let test_catalog_engine_equivalence () =
  let strip c = { c with Prov.c_engine = "" } in
  List.iter
    (fun e ->
      match e.AC.a_replay with
      | None -> ()
      | Some replay ->
        List.iter
          (fun size ->
            with_pool_size size (fun () ->
                let flat = replay ~engine:`Flat ~seed:3 ~n:100 in
                let frontier = replay ~engine:`Frontier ~seed:3 ~n:100 in
                check
                  (Printf.sprintf "%s tags at %d domains" e.AC.a_name size)
                  true
                  (flat.Prov.c_engine = "message_passing"
                  && frontier.Prov.c_engine = "frontier");
                check
                  (Printf.sprintf "%s certs equal at %d domains" e.AC.a_name
                     size)
                  true
                  (strip flat = strip frontier);
                check
                  (Printf.sprintf "%s frontier cert ok at %d domains"
                     e.AC.a_name size)
                  true frontier.Prov.c_ok))
          [ 1; 2; 4 ])
    AC.all

(* ------------------------------------------------------------------ *)
(* flood_gather: the changed-set frontier path (audit off) must equal
   the full-scan path (audit armed) *)

let test_flood_frontier_vs_full_scan () =
  List.iter
    (fun g ->
      let inst = Instance.create g in
      let fast = MP.flood_gather inst ~radius:6 (fun v -> v * 7) in
      Prov.start ();
      let full =
        match MP.flood_gather inst ~radius:6 (fun v -> v * 7) with
        | x ->
          Prov.abort ();
          x
        | exception e ->
          Prov.abort ();
          raise e
      in
      check "audited and frontier floods agree" true (fast = full))
    [
      Gen.path 40;
      Gen.cycle 9;
      Gen.star 12;
      Gen.grid 5 7;
      SO.hard_instance (Random.State.make [| 11 |]) ~n:60;
    ]

(* ------------------------------------------------------------------ *)
(* the wave SO solver *)

let test_wave_solver () =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = SO.hard_instance rng ~n:400 in
      let inst = Instance.create ~seed g in
      let stats = FS.Stats.recorder () in
      let out, meter = SO.solve_randomized_frontier ~stats inst in
      check (Printf.sprintf "valid (seed %d)" seed) true (SO.is_valid g out);
      check_int (Printf.sprintf "no sinks (seed %d)" seed) 0
        (SO.count_sinks g out);
      check (Printf.sprintf "metered (seed %d)" seed) true
        (Repro_local.Meter.max_radius meter >= 1);
      (* identical output and wave telemetry at every pool size *)
      let st = FS.Stats.snapshot stats in
      List.iter
        (fun size ->
          with_pool_size size (fun () ->
              let stats' = FS.Stats.recorder () in
              let out', _ = SO.solve_randomized_frontier ~stats:stats' inst in
              check
                (Printf.sprintf "deterministic at %d domains (seed %d)" size
                   seed)
                true
                (out'.Repro_lcl.Labeling.b = out.Repro_lcl.Labeling.b);
              let st' = FS.Stats.snapshot stats' in
              check
                (Printf.sprintf "wave shape at %d domains (seed %d)" size seed)
                true
                (st'.FS.Stats.active_nodes = st.FS.Stats.active_nodes
                && st'.FS.Stats.frontier_edges = st.FS.Stats.frontier_edges)))
        [ 2; 4 ])
    [ 1; 5; 9 ]

let suite =
  [
    ("frontier-set basics", `Quick, test_set_basics);
    ("frontier-set thresholds", `Quick, test_set_threshold);
    ("frontier-set expand", `Quick, test_set_expand);
    ("fused pool loop", `Quick, test_fused);
    ("switch round pinned on golden instance", `Quick, test_switch_round_pinned);
    ("audit catalog engine equivalence", `Slow, test_catalog_engine_equivalence);
    ("flood frontier path vs full scan", `Quick, test_flood_frontier_vs_full_scan);
    ("wave SO solver", `Quick, test_wave_solver);
  ]
