(* Alcotest adapter for Fuzz properties: a failing property renders its
   shrunk counterexample, reason and replay seed in the assertion
   message, so a red CI run is immediately reproducible with
   `repro fuzz` or a one-off `Prop.run ~count:1 ~seed:<replay>`. *)

module Prop = Repro_fuzz.Prop

let default_seed = 42

let run ?(seed = default_seed) ~count prop () =
  let r = Prop.run ~count ~seed prop in
  match r.Prop.r_failure with
  | None -> ()
  | Some _ -> Alcotest.fail (Format.asprintf "%a" Prop.pp_report r)

(* one alcotest case per property, preserving the property's name *)
let case ?(speed = `Quick) ?seed ~count prop =
  (prop.Prop.p_name, speed, run ?seed ~count prop)
