(* Tests for the locality provenance auditor: bitset arithmetic, native
   engine audits (the distributed checker), declared-bound floods and
   their ball containment, detection of a deliberately non-local run,
   pool-size independence of certificates, the solver audit catalog, and
   the audit/cert JSONL round-trip. *)

module Obs = Repro_obs
module Prov = Repro_obs.Provenance
module Bitset = Prov.Bitset
module G = Repro_graph.Multigraph
module Gen = Repro_graph.Generators
module T = Repro_graph.Traversal
module Instance = Repro_local.Instance
module Pool = Repro_local.Pool
module Audit = Repro_local.Audit
module Ball = Repro_local.Ball
module SO = Repro_problems.Sinkless_orientation
module AC = Repro_problems.Audit_catalog
module DC = Repro_lcl.Distributed_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* bitsets, across 64-bit word boundaries *)

let test_bitset () =
  let s = Bitset.create 130 in
  check_int "length" 130 (Bitset.length s);
  check_int "empty" 0 (Bitset.cardinal s);
  let members = [ 0; 63; 64; 65; 127; 129 ] in
  List.iter (Bitset.add s) members;
  Bitset.add s 64;
  check_int "cardinal ignores re-adds" (List.length members) (Bitset.cardinal s);
  List.iter (fun i -> check (Printf.sprintf "mem %d" i) true (Bitset.mem s i)) members;
  List.iter
    (fun i -> check (Printf.sprintf "not mem %d" i) false (Bitset.mem s i))
    [ 1; 62; 66; 128 ];
  let listed = ref [] in
  Bitset.iter (fun i -> listed := i :: !listed) s;
  Alcotest.(check (list int)) "iter ascending" members (List.rev !listed);
  let d = Bitset.create 130 in
  Bitset.add d 7;
  Bitset.blit ~src:s ~dst:d;
  check "blit overwrites" false (Bitset.mem d 7);
  check "blit copies" true (Bitset.equal s d);
  let u = Bitset.create 130 in
  Bitset.add u 7;
  Bitset.union_into ~into:u s;
  check_int "union cardinal" (1 + List.length members) (Bitset.cardinal u);
  check "union keeps old" true (Bitset.mem u 7);
  check "union not equal" false (Bitset.equal u s)

(* the distributed checker audited natively: one declared round, so every
   node's influence must be exactly its closed neighborhood *)

let test_dcheck_native_audit () =
  let rng = Random.State.make [| 5 |] in
  let g = SO.hard_instance rng ~n:60 in
  let inst = Instance.create ~seed:5 g in
  let out, _ = SO.solve_deterministic inst in
  let verdict, cert =
    DC.audited_run SO.problem inst ~input:(SO.trivial_input g) ~output:out
  in
  check "checker accepts" true verdict.DC.all_accept;
  check "certificate passes" true cert.Prov.c_ok;
  check_int "declared bound is 1" 1 cert.Prov.c_declared;
  check "violations empty" true (cert.Prov.c_violations = []);
  check_int "one record per node" (G.n g) (Array.length cert.Prov.c_records);
  Array.iter
    (fun r ->
      check "radius within ball" true
        (r.Prov.influence_radius <= r.Prov.ball_radius);
      (* influence of a one-round node = its closed neighborhood *)
      let nbrs = List.sort_uniq compare (r.Prov.node :: G.neighbors g r.Prov.node) in
      check_int
        (Printf.sprintf "node %d influence = closed neighborhood" r.Prov.node)
        (List.length nbrs) r.Prov.influence_size)
    cert.Prov.c_records

(* a flood run to the graph's diameter gathers the whole component: the
   influence set must coincide with Ball.gather's member set *)

let test_flood_influence_is_ball () =
  let g = Gen.cycle 9 in
  let inst = Instance.create g in
  let radius = 3 in
  let cert = Audit.run_flood ~label:"t" inst ~declared:(fun _ -> radius) in
  check "cycle flood passes" true cert.Prov.c_ok;
  Array.iter
    (fun r ->
      let ball = Ball.gather g ~center:r.Prov.node ~radius in
      check_int
        (Printf.sprintf "node %d influence = |ball|" r.Prov.node)
        (Array.length ball.Ball.to_global)
        r.Prov.influence_size;
      check_int
        (Printf.sprintf "node %d radius" r.Prov.node)
        radius r.Prov.influence_radius)
    cert.Prov.c_records

(* the detection path: a run that listens longer than declared must be
   caught, with the offending node, leaked source and distance named *)

let test_non_local_caught () =
  let g = Gen.path 7 in
  let inst = Instance.create g in
  let cert =
    Audit.non_local_flood ~label:"cheat" inst ~declared:(fun _ -> 1) ~overshoot:2
  in
  check "certificate fails" false cert.Prov.c_ok;
  check "has violations" true (cert.Prov.c_violations <> []);
  List.iter
    (fun v ->
      check "bound is the declared 1" true (v.Prov.v_bound = 1);
      check "leak is beyond the ball" true (v.Prov.v_distance > v.Prov.v_bound);
      check "leak within actual rounds" true (v.Prov.v_distance <= 3);
      check "round consistent with distance" true
        (v.Prov.v_round = v.Prov.v_distance);
      (* the named source really is at that distance from the named node *)
      check_int "distance is the graph distance" v.Prov.v_distance
        (T.bfs g v.Prov.v_node).(v.Prov.v_source))
    cert.Prov.c_violations;
  (* an interior path node has both endpoints of its 2-ball's complement
     leaking; node 3 must have leaked source 1 < distance-2 sources *)
  check "node 3 leaked something at distance 2 or 3" true
    (List.exists
       (fun v -> v.Prov.v_node = 3 && v.Prov.v_distance >= 2)
       cert.Prov.c_violations);
  let printed =
    Format.asprintf "%a" Prov.pp_violation (List.hd cert.Prov.c_violations)
  in
  check "pp_violation mentions the node" true
    (String.length printed > 0)

(* certificates must be bit-identical at every pool size (the bitset
   updates follow the engine's per-slot ownership discipline) *)

let audited_dcheck_events ~n ~seed () =
  let rng = Random.State.make [| seed |] in
  let g = SO.hard_instance rng ~n in
  let inst = Instance.create ~seed g in
  let out, _ = SO.solve_deterministic inst in
  let _, cert =
    DC.audited_run SO.problem inst ~input:(SO.trivial_input g) ~output:out
  in
  Prov.to_events cert

let test_cert_pool_size_independent () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 1;
      let seq = audited_dcheck_events ~n:300 ~seed:13 () in
      check "events nonempty" true (seq <> []);
      List.iter
        (fun s ->
          Pool.set_size s;
          let par = audited_dcheck_events ~n:300 ~seed:13 () in
          check (Printf.sprintf "identical at pool size %d" s) true (seq = par))
        [ 2; 4 ])

(* every catalog entry certifies cleanly at its declared bound *)

let test_catalog_all_pass () =
  check "catalog has the seven entries" true
    (List.sort compare AC.names
    = List.sort compare
        [
          "so-det";
          "so-rand";
          "so-wave";
          "coloring";
          "mis";
          "matching";
          "dcheck";
        ]);
  List.iter
    (fun e ->
      let cert = e.AC.a_run ~seed:3 ~n:120 in
      check (e.AC.a_name ^ " passes") true cert.Prov.c_ok;
      check (e.AC.a_name ^ " audited every node") true
        (Array.length cert.Prov.c_records = cert.Prov.c_n))
    AC.all;
  check "find hit" true (AC.find "mis" <> None);
  check "find miss" true (AC.find "nope" = None)

(* audit/cert events round-trip through JSONL, and a certificate's event
   block satisfies the offline invariant checker *)

let test_audit_events_jsonl_round_trip () =
  let g = Gen.cycle 6 in
  let inst = Instance.create g in
  let cert = Audit.run_flood ~label:"rt" inst ~declared:(fun _ -> 2) in
  let events = Obs.Trace.Meta { label = "audit:rt"; n = 6 } :: Prov.to_events cert in
  check "invariants hold" true (Obs.Trace.check_invariants events = []);
  let file = Filename.temp_file "repro_audit" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Obs.Trace.write_jsonl file events;
      match Obs.Trace.read_jsonl file with
      | Error e -> Alcotest.failf "read_jsonl: %s" e
      | Ok back -> check "round-trips exactly" true (back = events))

(* the invariant checker rejects a tampered certificate block *)

let test_invariant_checker_catches_tampering () =
  let g = Gen.cycle 6 in
  let inst = Instance.create g in
  let cert = Audit.run_flood ~label:"tamper" inst ~declared:(fun _ -> 2) in
  let events = Prov.to_events cert in
  let tampered =
    List.map
      (function
        | Obs.Trace.Audit
            { node; rounds_active; influence_radius = _; ball_radius; influence_size } ->
          Obs.Trace.Audit
            {
              node;
              rounds_active;
              influence_radius = ball_radius + 5;
              ball_radius;
              influence_size;
            }
        | e -> e)
      events
  in
  check "tampered radius caught" true
    (Obs.Trace.check_invariants tampered <> []);
  let orphaned =
    List.filter (function Obs.Trace.Cert _ -> false | _ -> true) events
  in
  check "audit without closing cert caught" true
    (Obs.Trace.check_invariants orphaned <> [])

(* a raising audited run must leave the recorder disarmed *)

let test_audit_abort_on_raise () =
  let g = Gen.path 4 in
  let inst = Instance.create g in
  (try
     ignore
       (Audit.certify_run inst
          ~declared:(fun _ -> 1)
          (fun () -> failwith "boom"))
   with Failure _ -> ());
  check "recorder disarmed after raise" false (Prov.active ());
  (* and a fresh audit still works *)
  let cert = Audit.run_flood inst ~declared:(fun _ -> 1) in
  check "next audit clean" true cert.Prov.c_ok

let suite =
  [
    ("bitset across word boundaries", `Quick, test_bitset);
    ("dcheck native audit", `Quick, test_dcheck_native_audit);
    ("flood influence equals ball", `Quick, test_flood_influence_is_ball);
    ("non-local run caught", `Quick, test_non_local_caught);
    ("certificate pool-size independent", `Quick, test_cert_pool_size_independent);
    ("audit catalog all pass", `Quick, test_catalog_all_pass);
    ("audit events jsonl round-trip", `Quick, test_audit_events_jsonl_round_trip);
    ("invariant checker catches tampering", `Quick, test_invariant_checker_catches_tampering);
    ("audit aborted on raise", `Quick, test_audit_abort_on_raise);
  ]
