(* Mutation coverage for the gadget checkers: every Corrupt operator,
   applied to a valid gadget, must (a) be rejected by the sequential
   Gadget.Check, (b) make the Verifier emit at least one Psi Error
   pointer, and (c) keep every Error pointer within the declared
   fault_radius of the nodes the operator actually touched — i.e. the
   error-pointer machinery of §4.3 genuinely localizes each kind of
   fault, not just the ones the random fuzz targets happen to draw. *)

module G = Repro_graph.Multigraph
module GL = Repro_gadget.Labels
module GB = Repro_gadget.Build
module Check = Repro_gadget.Check
module Corrupt = Repro_gadget.Corrupt
module V = Repro_gadget.Verifier
module Psi = Repro_gadget.Psi

let check = Alcotest.(check bool)

let delta = 3
let valid = lazy (GB.gadget ~delta ~height:4)

(* a random relabel can occasionally recreate a valid labeling, so walk
   deterministic seeds until Check rejects *)
let corrupt_with kind =
  let rec go s =
    if s > 200 then
      Alcotest.fail
        (Format.asprintf "operator %a never invalidated the gadget"
           Corrupt.pp_kind kind)
    else
      let rng = Random.State.make [| 1000 + s |] in
      let t, fault = Corrupt.apply_traced rng kind (Lazy.force valid) in
      if Check.is_valid ~delta t then go (s + 1) else (t, fault)
  in
  go 0

let bfs_dist g src =
  let n = G.n g in
  let d = Array.make n (-1) in
  let q = Queue.create () in
  d.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun w ->
        if d.(w) < 0 then begin
          d.(w) <- d.(u) + 1;
          Queue.add w q
        end)
      (G.neighbors g u)
  done;
  d

let test_kind kind () =
  let name = Format.asprintf "%a" Corrupt.pp_kind kind in
  let t, fault = corrupt_with kind in
  check (name ^ ": Check rejects") true (not (Check.is_valid ~delta t));
  check (name ^ ": fault names sites") true (fault.Corrupt.f_sites <> []);
  let out, _ = V.run ~delta ~n:(G.n t.GL.graph) t in
  check (name ^ ": verifier rejects") true (not (V.is_all_ok out));
  check (name ^ ": verifier output satisfies Psi") true
    (Psi.is_valid ~delta t out);
  let errors = ref [] in
  Array.iteri (fun v o -> if o = Psi.Error then errors := v :: !errors) out;
  check (name ^ ": error pointer exists") true (!errors <> []);
  let dists = List.map (bfs_dist t.GL.graph) fault.Corrupt.f_sites in
  List.iter
    (fun v ->
      let localized =
        List.exists (fun d -> d.(v) >= 0 && d.(v) <= Corrupt.fault_radius) dists
      in
      check
        (Printf.sprintf "%s: Error at %d within radius %d of %s" name v
           Corrupt.fault_radius
           (Format.asprintf "%a" Corrupt.pp_fault fault))
        true localized)
    !errors

let suite =
  List.map
    (fun kind ->
      ( Format.asprintf "localizes %a" Corrupt.pp_kind kind,
        `Quick,
        test_kind kind ))
    Corrupt.all_kinds
