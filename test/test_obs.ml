(* Tests for the telemetry subsystem: counter/histogram arithmetic, the
   disabled-registry no-op contract, find-or-create sharing, JSONL
   round-trips, the trace-vs-counter message invariant, and the
   seq-vs-par deterministic-projection invariant. *)

module Obs = Repro_obs
module G = Repro_graph.Multigraph
module Instance = Repro_local.Instance
module Pool = Repro_local.Pool
module SO = Repro_problems.Sinkless_orientation
module DC = Repro_lcl.Distributed_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* every test that enables the registry must switch it back off, or it
   would change the timing profile of the suites that run after it *)
let with_enabled f =
  Fun.protect ~finally:(fun () -> Obs.Registry.disable ()) (fun () ->
      Obs.Registry.enable ();
      f ())

(* counters *)

let test_counter_arithmetic () =
  let gate = ref false in
  let c = Obs.Counter.make ~gate "test.scratch.counter" in
  Alcotest.(check string) "name" "test.scratch.counter" (Obs.Counter.name c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  check_int "gated-off mutation is a no-op" 0 (Obs.Counter.value c);
  gate := true;
  Obs.Counter.incr c;
  Obs.Counter.add c 5;
  check_int "incr + add" 6 (Obs.Counter.value c);
  Obs.Counter.reset c;
  check_int "reset" 0 (Obs.Counter.value c)

(* histograms *)

let test_histogram_arithmetic () =
  let gate = ref false in
  let h = Obs.Histogram.make ~gate "test.scratch.hist" in
  Obs.Histogram.observe h 100;
  check_int "gated-off observation is a no-op" 0 (Obs.Histogram.count h);
  gate := true;
  List.iter (Obs.Histogram.observe h) [ 0; 1; 2; 3; 8 ];
  check_int "count" 5 (Obs.Histogram.count h);
  check_int "sum" 14 (Obs.Histogram.sum h);
  check_int "max" 8 (Obs.Histogram.max_value h);
  check "mean" true (abs_float (Obs.Histogram.mean h -. 2.8) < 1e-9);
  let s = Obs.Histogram.snapshot h in
  Alcotest.(check (list (pair int int)))
    "power-of-two buckets, ascending"
    [ (0, 1); (1, 1); (2, 2); (8, 1) ]
    s.Obs.Histogram.buckets;
  Obs.Histogram.reset h;
  check_int "reset count" 0 (Obs.Histogram.count h);
  check_int "reset sum" 0 (Obs.Histogram.sum h)

let test_histogram_quantile () =
  let gate = ref true in
  let h = Obs.Histogram.make ~gate "test.scratch.quantile" in
  check "empty snapshot quantile is 0" true
    (Obs.Histogram.quantile (Obs.Histogram.snapshot h) 0.5 = 0.0);
  List.iter (Obs.Histogram.observe h) [ 0; 1; 2; 3; 8 ];
  let s = Obs.Histogram.snapshot h in
  let q p = Obs.Histogram.quantile s p in
  check "p0 is the bottom of the first bucket" true (abs_float (q 0.0) < 1e-9);
  (* rank 2.5 lands a quarter into bucket [2,4) *)
  check "median interpolates inside its bucket" true
    (abs_float (q 0.5 -. 2.5) < 1e-9);
  check "p100 capped at the observed max" true (abs_float (q 1.0 -. 8.0) < 1e-9);
  check "out-of-range q clamped" true (abs_float (q 2.0 -. 8.0) < 1e-9)

(* registry *)

let test_registry_sharing () =
  let reg = Obs.Registry.ambient () in
  let a = Obs.Registry.counter reg "test.registry.shared" in
  let b = Obs.Registry.counter reg "test.registry.shared" in
  check "find-or-create returns the same instance" true (a == b);
  with_enabled (fun () ->
      Obs.Counter.add a 3;
      check_int "both handles see the value" 3 (Obs.Counter.value b));
  check "kind mismatch raises" true
    (match Obs.Registry.histogram reg "test.registry.shared" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "registered and listed" true
    (List.mem_assoc "test.registry.shared" (Obs.Registry.counters ()))

let test_registry_isolation () =
  let r1 = Obs.Registry.create () in
  let r2 = Obs.Registry.create () in
  Obs.Registry.enable ~reg:r1 ();
  Obs.Registry.enable ~reg:r2 ();
  let c1 = Obs.Registry.counter r1 "test.iso.counter" in
  let c2 = Obs.Registry.counter r2 "test.iso.counter" in
  check "same name, distinct registries, distinct instances" true
    (not (c1 == c2));
  Obs.Counter.add c1 5;
  check_int "no cross-registry bleed" 0 (Obs.Counter.value c2);
  Obs.Registry.scoped r1 (fun () ->
      check_int "ambient resolution sees the scoped registry" 5
        (match
           List.assoc_opt "test.iso.counter" (Obs.Registry.counters ())
         with
        | Some v -> v
        | None -> -1));
  check "default registry untouched" false
    (List.mem_assoc "test.iso.counter" (Obs.Registry.counters ()));
  Obs.Registry.disable ~reg:r1 ();
  Obs.Counter.incr c1;
  check_int "per-registry gate" 5 (Obs.Counter.value c1)

(* JSONL *)

let test_jsonl_round_trip () =
  let events =
    [
      Obs.Trace.Meta { label = "unit"; n = 42 };
      Obs.Trace.Round
        {
          engine = "message_passing";
          round = 0;
          messages = 17;
          payload_bytes = 680;
          mailbox_max = 3;
          mailbox_mean = 2.125;
          rng_draws = 5;
          chunks = 2;
          chunk_ns = 12345;
        };
      Obs.Trace.Counter { name = "local.mp.messages"; value = 17 };
    ]
  in
  let file = Filename.temp_file "repro_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Obs.Trace.write_jsonl file events;
      match Obs.Trace.read_jsonl file with
      | Error e -> Alcotest.failf "read_jsonl: %s" e
      | Ok back ->
        check "round-trips exactly" true (back = events);
        check_int "total messages" 17 (Obs.Trace.total_messages back);
        check_int "counter lookup" 17
          (match Obs.Trace.counter_value "local.mp.messages" back with
          | Some v -> v
          | None -> -1))

let test_json_parser_rejects_garbage () =
  check "truncated object" true
    (Result.is_error (Obs.Json.of_string "{\"a\": 1"));
  check "trailing junk" true (Result.is_error (Obs.Json.of_string "1 2"));
  check "bare word" true (Result.is_error (Obs.Json.of_string "telemetry"));
  check "trailing garbage after object" true
    (Result.is_error (Obs.Json.of_string "{\"a\": 1} x"));
  check "trailing garbage after array" true
    (Result.is_error (Obs.Json.of_string "[1, 2],"))

(* printer/parser exactness on the shapes the trace format exercises *)

let json_round_trip j =
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Ok back -> back = j
  | Error _ -> false

let test_json_value_round_trips () =
  let module J = Obs.Json in
  check "string escapes" true
    (json_round_trip
       (J.String "quote \" backslash \\ newline \n tab \t cr \r nul \x00"));
  check "non-ascii bytes survive" true
    (json_round_trip (J.String "ball \xe2\x8a\x86 radius"));
  check "nested arrays" true
    (json_round_trip (J.List [ J.List [ J.Int 1; J.List [] ]; J.List [ J.Null ] ]));
  check "nested objects" true
    (json_round_trip
       (J.Obj
          [
            ("a", J.Obj [ ("b", J.List [ J.Bool true; J.Float 2.5 ]) ]);
            ("empty", J.Obj []);
          ]));
  check "max_int" true (json_round_trip (J.Int max_int));
  check "min_int" true (json_round_trip (J.Int min_int));
  check "ints stay ints" true
    (match Obs.Json.of_string "7" with Ok (J.Int 7) -> true | _ -> false)

(* the tentpole invariant: a traced run's per-round message counts sum to
   the engine's own message counter delta *)

let traced_dcheck ~n ~seed () =
  let rng = Random.State.make [| seed |] in
  let g = SO.hard_instance rng ~n in
  let inst = Instance.create ~seed g in
  let out, _ = SO.solve_randomized inst in
  Obs.Trace.start ~label:"test" ~n ();
  Fun.protect
    ~finally:(fun () -> Obs.Registry.disable ())
    (fun () ->
      let v = DC.run SO.problem inst ~input:(SO.trivial_input g) ~output:out in
      check "output accepted" true v.DC.all_accept;
      Obs.Trace.finish ())

(* regression: an engine raising mid-run under --trace must not leave the
   recorder armed (it used to, silently polluting the next trace) *)

let test_trace_record_disarms_on_raise () =
  (try
     ignore
       (Obs.Trace.record ~label:"leak" (fun () -> failwith "mid-run crash"))
   with Failure _ -> ());
  Fun.protect
    ~finally:(fun () -> Obs.Registry.disable ())
    (fun () ->
      check "recorder disarmed after raise" false (Obs.Trace.active ());
      (* the next trace starts from a clean buffer and clean baselines *)
      let events = traced_dcheck ~n:120 ~seed:21 () in
      let stale =
        List.exists
          (function Obs.Trace.Meta { label; _ } -> label = "leak" | _ -> false)
          events
      in
      check "no stale events inherited" false stale;
      check "fresh trace still consistent" true
        (Obs.Trace.check_invariants events = []))

(* regression for the serve scheduler's isolation contract: aborting one
   registry's trace (an engine raising mid-request) must leave another
   registry's recorder armed with its events intact *)

let test_trace_abort_scoped_to_registry () =
  let r1 = Obs.Registry.create () in
  let r2 = Obs.Registry.create () in
  Obs.Registry.scoped r1 (fun () -> Obs.Trace.start ~label:"keep" ~n:1 ());
  Obs.Registry.scoped r2 (fun () ->
      Obs.Trace.start ~label:"doomed" ~n:1 ();
      Obs.Trace.abort ();
      check "aborted recorder disarmed" false (Obs.Trace.active ()));
  Obs.Registry.scoped r1 (fun () ->
      check "concurrent recorder still armed" true (Obs.Trace.active ());
      let events = Obs.Trace.finish () in
      check "survivor kept its own events" true
        (List.exists
           (function
             | Obs.Trace.Meta { label; _ } -> label = "keep" | _ -> false)
           events);
      check "no events leaked from the aborted trace" false
        (List.exists
           (function
             | Obs.Trace.Meta { label; _ } -> label = "doomed" | _ -> false)
           events))

let test_trace_messages_match_counter () =
  let events = traced_dcheck ~n:300 ~seed:7 () in
  let per_round = Obs.Trace.total_messages ~engine:"message_passing" events in
  check "trace has rounds" true (per_round > 0);
  check_int "round sums equal the engine counter delta" per_round
    (match Obs.Trace.counter_value "local.mp.messages" events with
    | Some v -> v
    | None -> -1)

(* seq-vs-par: the deterministic projection of a traced run must not
   depend on the pool size (pool/chunk data is excluded by design) *)

let test_trace_seq_par_identical () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 1;
      let seq = traced_dcheck ~n:300 ~seed:11 () in
      check "sequential trace nonempty" true (seq <> []);
      List.iter
        (fun s ->
          Pool.set_size s;
          let par = traced_dcheck ~n:300 ~seed:11 () in
          check
            (Printf.sprintf "projection identical at pool size %d" s)
            true
            (Obs.Trace.deterministic_equal seq par))
        [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* spans: recording semantics, abort, nesting invariants, and the
   seq-vs-par deterministic projection *)

let test_span_record_and_take () =
  (* disarmed: inert handles, nothing recorded, single-load discipline *)
  check "starts disarmed" false (Obs.Span.armed ());
  let h = Obs.Span.enter "test.disarmed" in
  check "disarmed handle is inert" false (Obs.Span.live h);
  Obs.Span.exit h;
  check_int "record while disarmed" (-1)
    (Obs.Span.record ~label:"test.x" ~start_ns:0 ~stop_ns:1 ());
  check "take while disarmed" true (Obs.Span.take () = []);
  (* armed: a three-span tree *)
  let tid = Obs.Span.arm () in
  let root = Obs.Span.enter "test.root" in
  check "armed handle is live" true (Obs.Span.live root);
  let child = Obs.Span.enter "test.child" in
  Obs.Span.exit ~kvs:[ ("k", 7) ] child;
  check "record returns an id" true
    (Obs.Span.record ~label:"test.record" ~start_ns:5 ~stop_ns:9 () >= 0);
  Obs.Span.exit root;
  let spans = Obs.Span.take () in
  check "take disarms" false (Obs.Span.armed ());
  check_int "three spans drained" 3 (List.length spans);
  let find l = List.find (fun s -> s.Obs.Trace.label = l) spans in
  let sroot = find "test.root" in
  let schild = find "test.child" in
  let srec = find "test.record" in
  check "all spans carry the armed trace id" true
    (List.for_all (fun s -> s.Obs.Trace.trace_id = tid) spans);
  check_int "root has no parent" (-1) sroot.Obs.Trace.parent;
  check_int "child parents under root" sroot.Obs.Trace.span_id
    schild.Obs.Trace.parent;
  check_int "record parents under the innermost open span"
    sroot.Obs.Trace.span_id srec.Obs.Trace.parent;
  check "exit kvs kept" true (schild.Obs.Trace.kvs = [ ("k", 7) ]);
  check "child interval inside root interval" true
    (sroot.Obs.Trace.start_ns <= schild.Obs.Trace.start_ns
    && schild.Obs.Trace.stop_ns <= sroot.Obs.Trace.stop_ns);
  check "second take is empty" true (Obs.Span.take () = [])

let test_span_abort_discards () =
  let (_ : int) = Obs.Span.arm () in
  let h = Obs.Span.enter "test.doomed" in
  Obs.Span.exit h;
  Obs.Span.abort ();
  check "abort disarms" false (Obs.Span.armed ());
  check "abort discards buffered spans" true (Obs.Span.take () = []);
  (* a failed recording leaves the next one pristine *)
  let (_ : int) = Obs.Span.arm () in
  let h = Obs.Span.enter "test.fresh" in
  Obs.Span.exit h;
  let spans = Obs.Span.take () in
  check "next recording sees only its own spans" true
    (List.for_all (fun s -> s.Obs.Trace.label = "test.fresh") spans
    && List.length spans = 1)

let sp ~tid ~id ~parent ~label ~a ~b kvs =
  Obs.Trace.Span
    {
      Obs.Trace.trace_id = tid;
      span_id = id;
      parent;
      label;
      start_ns = a;
      stop_ns = b;
      kvs;
    }

let test_span_nesting_invariants () =
  let good =
    [
      sp ~tid:7 ~id:3 ~parent:(-1) ~label:"serve.solve" ~a:100 ~b:900 [];
      sp ~tid:7 ~id:5 ~parent:3 ~label:"serve.execute" ~a:150 ~b:800
        [ ("n", 42) ];
    ]
  in
  check "well-nested spans pass" true (Obs.Trace.check_invariants good = []);
  let escaped =
    [
      sp ~tid:7 ~id:3 ~parent:(-1) ~label:"serve.solve" ~a:100 ~b:900 [];
      sp ~tid:7 ~id:5 ~parent:3 ~label:"serve.execute" ~a:150 ~b:950 [];
    ]
  in
  check "child escaping its parent interval fails" true
    (Obs.Trace.check_invariants escaped <> []);
  let dup =
    [
      sp ~tid:7 ~id:3 ~parent:(-1) ~label:"a" ~a:0 ~b:10 [];
      sp ~tid:7 ~id:3 ~parent:(-1) ~label:"b" ~a:0 ~b:10 [];
    ]
  in
  check "duplicate span ids fail" true (Obs.Trace.check_invariants dup <> []);
  check "unknown parent fails" true
    (Obs.Trace.check_invariants
       [ sp ~tid:7 ~id:3 ~parent:99 ~label:"orphan" ~a:0 ~b:10 [] ]
    <> []);
  check "backwards interval fails" true
    (Obs.Trace.check_invariants
       [ sp ~tid:7 ~id:3 ~parent:(-1) ~label:"rev" ~a:10 ~b:5 [] ]
    <> []);
  (* same ids in different traces are independent *)
  check "ids are scoped per trace" true
    (Obs.Trace.check_invariants
       [
         sp ~tid:1 ~id:3 ~parent:(-1) ~label:"a" ~a:0 ~b:10 [];
         sp ~tid:2 ~id:3 ~parent:(-1) ~label:"a" ~a:0 ~b:10 [];
       ]
    = [])

let test_span_projection_canonicalizes () =
  (* same tree shape recorded under different pool geometry: different
     raw ids, different timestamps, different chunk spans *)
  let run1 =
    [
      sp ~tid:7 ~id:3 ~parent:(-1) ~label:"mp.run" ~a:100 ~b:900
        [ ("rounds", 2); ("wall_ns", 800) ];
      sp ~tid:7 ~id:6 ~parent:3 ~label:"mp.round" ~a:110 ~b:400
        [ ("round", 0) ];
      sp ~tid:7 ~id:9 ~parent:6 ~label:"pool.chunk" ~a:120 ~b:200
        [ ("chunk", 0) ];
    ]
  in
  let run2 =
    [
      sp ~tid:41 ~id:8 ~parent:(-1) ~label:"mp.run" ~a:5000 ~b:6000
        [ ("rounds", 2); ("wall_ns", 950) ];
      sp ~tid:41 ~id:13 ~parent:8 ~label:"mp.round" ~a:5100 ~b:5400
        [ ("round", 0) ];
      sp ~tid:41 ~id:21 ~parent:13 ~label:"pool.chunk" ~a:5150 ~b:5160
        [ ("chunk", 4) ];
      sp ~tid:41 ~id:29 ~parent:13 ~label:"pool.chunk" ~a:5150 ~b:5170
        [ ("chunk", 5) ];
    ]
  in
  check "projection: ids/timing/pool spans are canonicalized away" true
    (Obs.Trace.deterministic_equal run1 run2);
  let run3 =
    [
      sp ~tid:41 ~id:8 ~parent:(-1) ~label:"mp.run" ~a:5000 ~b:6000
        [ ("rounds", 3); ("wall_ns", 950) ];
      sp ~tid:41 ~id:13 ~parent:8 ~label:"mp.round" ~a:5100 ~b:5400
        [ ("round", 0) ];
    ]
  in
  check "projection still sees real attribute differences" false
    (Obs.Trace.deterministic_equal run1 run3)

(* the forest rebuild must work on the stream order take() produces:
   children close (and are listed) before their parents *)
let test_span_forest_rebuild () =
  let raw ~id ~parent ~label ~a ~b =
    {
      Obs.Trace.trace_id = 7;
      span_id = id;
      parent;
      label;
      start_ns = a;
      stop_ns = b;
      kvs = [];
    }
  in
  let stream =
    [
      raw ~id:2 ~parent:1 ~label:"leaf" ~a:120 ~b:180;
      raw ~id:1 ~parent:0 ~label:"mid.short" ~a:110 ~b:200;
      raw ~id:3 ~parent:0 ~label:"mid.long" ~a:210 ~b:900;
      raw ~id:0 ~parent:(-1) ~label:"root" ~a:100 ~b:950;
      raw ~id:9 ~parent:42 ~label:"orphan" ~a:300 ~b:310;
    ]
  in
  match Obs.Summary.span_forest stream with
  | [ (7, roots) ] ->
    let labels ns = List.map (fun n -> n.Obs.Summary.node.Obs.Trace.label) ns in
    check "roots: real root plus the unresolvable orphan" true
      (labels roots = [ "root"; "orphan" ]);
    let root = List.hd roots in
    check "children attach under the root, ordered by start" true
      (labels root.Obs.Summary.children = [ "mid.short"; "mid.long" ]);
    check "grandchild attaches one level down" true
      (labels (List.hd root.Obs.Summary.children).Obs.Summary.children
      = [ "leaf" ]);
    check "critical path follows the widest child" true
      (labels (Obs.Summary.critical_path root) = [ "root"; "mid.long" ]);
    check "self time excludes child cover" true
      (Obs.Summary.self_time root = 950 - 100 - (200 - 110) - (900 - 210))
  | _ -> check "forest grouped as one trace under id 7" true false

(* a traced + span-armed distributed check: the span stream drains into
   the same trace the round events use *)
let span_traced_dcheck ~n ~seed () =
  let rng = Random.State.make [| seed |] in
  let g = SO.hard_instance rng ~n in
  let inst = Instance.create ~seed g in
  let out, _ = SO.solve_randomized inst in
  Obs.Trace.start ~label:"test" ~n ();
  let (_ : int) = Obs.Span.arm () in
  Fun.protect
    ~finally:(fun () -> Obs.Registry.disable ())
    (fun () ->
      let v =
        Obs.Span.with_span "cli.test" (fun () ->
            DC.run SO.problem inst ~input:(SO.trivial_input g) ~output:out)
      in
      check "output accepted" true v.DC.all_accept;
      Obs.Span.flush_to_trace ();
      Obs.Trace.finish ())

let test_span_seq_par_identical () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 1;
      let seq = span_traced_dcheck ~n:300 ~seed:13 () in
      check "trace carries span events" true (Obs.Trace.spans seq <> []);
      check "span nesting invariants hold" true
        (Obs.Trace.check_invariants seq = []);
      check "engine round spans present" true
        (List.exists
           (fun s -> s.Obs.Trace.label = "mp.round")
           (Obs.Trace.spans seq));
      List.iter
        (fun s ->
          Pool.set_size s;
          let par = span_traced_dcheck ~n:300 ~seed:13 () in
          check
            (Printf.sprintf "span invariants hold at pool size %d" s)
            true
            (Obs.Trace.check_invariants par = []);
          check
            (Printf.sprintf "span projection identical at pool size %d" s)
            true
            (Obs.Trace.deterministic_equal seq par))
        [ 2; 4 ])

let suite =
  [
    ("counter arithmetic and gating", `Quick, test_counter_arithmetic);
    ("histogram arithmetic and gating", `Quick, test_histogram_arithmetic);
    ("histogram quantiles", `Quick, test_histogram_quantile);
    ("span record and take", `Quick, test_span_record_and_take);
    ("span abort discards", `Quick, test_span_abort_discards);
    ("span nesting invariants", `Quick, test_span_nesting_invariants);
    ("span projection canonicalizes", `Quick, test_span_projection_canonicalizes);
    ("span forest rebuild", `Quick, test_span_forest_rebuild);
    ("seq-vs-par span telemetry", `Quick, test_span_seq_par_identical);
    ("registry find-or-create", `Quick, test_registry_sharing);
    ("registry isolation", `Quick, test_registry_isolation);
    ("trace abort scoped to registry", `Quick, test_trace_abort_scoped_to_registry);
    ("jsonl round-trip", `Quick, test_jsonl_round_trip);
    ("json parser rejects garbage", `Quick, test_json_parser_rejects_garbage);
    ("json value round-trips", `Quick, test_json_value_round_trips);
    ("trace record disarms on raise", `Quick, test_trace_record_disarms_on_raise);
    ("trace messages match counter", `Quick, test_trace_messages_match_counter);
    ("seq-vs-par telemetry", `Quick, test_trace_seq_par_identical);
  ]
