(* Tests for the telemetry subsystem: counter/histogram arithmetic, the
   disabled-registry no-op contract, find-or-create sharing, JSONL
   round-trips, the trace-vs-counter message invariant, and the
   seq-vs-par deterministic-projection invariant. *)

module Obs = Repro_obs
module G = Repro_graph.Multigraph
module Instance = Repro_local.Instance
module Pool = Repro_local.Pool
module SO = Repro_problems.Sinkless_orientation
module DC = Repro_lcl.Distributed_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* every test that enables the registry must switch it back off, or it
   would change the timing profile of the suites that run after it *)
let with_enabled f =
  Fun.protect ~finally:(fun () -> Obs.Registry.disable ()) (fun () ->
      Obs.Registry.enable ();
      f ())

(* counters *)

let test_counter_arithmetic () =
  let gate = ref false in
  let c = Obs.Counter.make ~gate "test.scratch.counter" in
  Alcotest.(check string) "name" "test.scratch.counter" (Obs.Counter.name c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  check_int "gated-off mutation is a no-op" 0 (Obs.Counter.value c);
  gate := true;
  Obs.Counter.incr c;
  Obs.Counter.add c 5;
  check_int "incr + add" 6 (Obs.Counter.value c);
  Obs.Counter.reset c;
  check_int "reset" 0 (Obs.Counter.value c)

(* histograms *)

let test_histogram_arithmetic () =
  let gate = ref false in
  let h = Obs.Histogram.make ~gate "test.scratch.hist" in
  Obs.Histogram.observe h 100;
  check_int "gated-off observation is a no-op" 0 (Obs.Histogram.count h);
  gate := true;
  List.iter (Obs.Histogram.observe h) [ 0; 1; 2; 3; 8 ];
  check_int "count" 5 (Obs.Histogram.count h);
  check_int "sum" 14 (Obs.Histogram.sum h);
  check_int "max" 8 (Obs.Histogram.max_value h);
  check "mean" true (abs_float (Obs.Histogram.mean h -. 2.8) < 1e-9);
  let s = Obs.Histogram.snapshot h in
  Alcotest.(check (list (pair int int)))
    "power-of-two buckets, ascending"
    [ (0, 1); (1, 1); (2, 2); (8, 1) ]
    s.Obs.Histogram.buckets;
  Obs.Histogram.reset h;
  check_int "reset count" 0 (Obs.Histogram.count h);
  check_int "reset sum" 0 (Obs.Histogram.sum h)

(* registry *)

let test_registry_sharing () =
  let reg = Obs.Registry.ambient () in
  let a = Obs.Registry.counter reg "test.registry.shared" in
  let b = Obs.Registry.counter reg "test.registry.shared" in
  check "find-or-create returns the same instance" true (a == b);
  with_enabled (fun () ->
      Obs.Counter.add a 3;
      check_int "both handles see the value" 3 (Obs.Counter.value b));
  check "kind mismatch raises" true
    (match Obs.Registry.histogram reg "test.registry.shared" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "registered and listed" true
    (List.mem_assoc "test.registry.shared" (Obs.Registry.counters ()))

let test_registry_isolation () =
  let r1 = Obs.Registry.create () in
  let r2 = Obs.Registry.create () in
  Obs.Registry.enable ~reg:r1 ();
  Obs.Registry.enable ~reg:r2 ();
  let c1 = Obs.Registry.counter r1 "test.iso.counter" in
  let c2 = Obs.Registry.counter r2 "test.iso.counter" in
  check "same name, distinct registries, distinct instances" true
    (not (c1 == c2));
  Obs.Counter.add c1 5;
  check_int "no cross-registry bleed" 0 (Obs.Counter.value c2);
  Obs.Registry.scoped r1 (fun () ->
      check_int "ambient resolution sees the scoped registry" 5
        (match
           List.assoc_opt "test.iso.counter" (Obs.Registry.counters ())
         with
        | Some v -> v
        | None -> -1));
  check "default registry untouched" false
    (List.mem_assoc "test.iso.counter" (Obs.Registry.counters ()));
  Obs.Registry.disable ~reg:r1 ();
  Obs.Counter.incr c1;
  check_int "per-registry gate" 5 (Obs.Counter.value c1)

(* JSONL *)

let test_jsonl_round_trip () =
  let events =
    [
      Obs.Trace.Meta { label = "unit"; n = 42 };
      Obs.Trace.Round
        {
          engine = "message_passing";
          round = 0;
          messages = 17;
          payload_bytes = 680;
          mailbox_max = 3;
          mailbox_mean = 2.125;
          rng_draws = 5;
          chunks = 2;
          chunk_ns = 12345;
        };
      Obs.Trace.Counter { name = "local.mp.messages"; value = 17 };
    ]
  in
  let file = Filename.temp_file "repro_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Obs.Trace.write_jsonl file events;
      match Obs.Trace.read_jsonl file with
      | Error e -> Alcotest.failf "read_jsonl: %s" e
      | Ok back ->
        check "round-trips exactly" true (back = events);
        check_int "total messages" 17 (Obs.Trace.total_messages back);
        check_int "counter lookup" 17
          (match Obs.Trace.counter_value "local.mp.messages" back with
          | Some v -> v
          | None -> -1))

let test_json_parser_rejects_garbage () =
  check "truncated object" true
    (Result.is_error (Obs.Json.of_string "{\"a\": 1"));
  check "trailing junk" true (Result.is_error (Obs.Json.of_string "1 2"));
  check "bare word" true (Result.is_error (Obs.Json.of_string "telemetry"));
  check "trailing garbage after object" true
    (Result.is_error (Obs.Json.of_string "{\"a\": 1} x"));
  check "trailing garbage after array" true
    (Result.is_error (Obs.Json.of_string "[1, 2],"))

(* printer/parser exactness on the shapes the trace format exercises *)

let json_round_trip j =
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Ok back -> back = j
  | Error _ -> false

let test_json_value_round_trips () =
  let module J = Obs.Json in
  check "string escapes" true
    (json_round_trip
       (J.String "quote \" backslash \\ newline \n tab \t cr \r nul \x00"));
  check "non-ascii bytes survive" true
    (json_round_trip (J.String "ball \xe2\x8a\x86 radius"));
  check "nested arrays" true
    (json_round_trip (J.List [ J.List [ J.Int 1; J.List [] ]; J.List [ J.Null ] ]));
  check "nested objects" true
    (json_round_trip
       (J.Obj
          [
            ("a", J.Obj [ ("b", J.List [ J.Bool true; J.Float 2.5 ]) ]);
            ("empty", J.Obj []);
          ]));
  check "max_int" true (json_round_trip (J.Int max_int));
  check "min_int" true (json_round_trip (J.Int min_int));
  check "ints stay ints" true
    (match Obs.Json.of_string "7" with Ok (J.Int 7) -> true | _ -> false)

(* the tentpole invariant: a traced run's per-round message counts sum to
   the engine's own message counter delta *)

let traced_dcheck ~n ~seed () =
  let rng = Random.State.make [| seed |] in
  let g = SO.hard_instance rng ~n in
  let inst = Instance.create ~seed g in
  let out, _ = SO.solve_randomized inst in
  Obs.Trace.start ~label:"test" ~n ();
  Fun.protect
    ~finally:(fun () -> Obs.Registry.disable ())
    (fun () ->
      let v = DC.run SO.problem inst ~input:(SO.trivial_input g) ~output:out in
      check "output accepted" true v.DC.all_accept;
      Obs.Trace.finish ())

(* regression: an engine raising mid-run under --trace must not leave the
   recorder armed (it used to, silently polluting the next trace) *)

let test_trace_record_disarms_on_raise () =
  (try
     ignore
       (Obs.Trace.record ~label:"leak" (fun () -> failwith "mid-run crash"))
   with Failure _ -> ());
  Fun.protect
    ~finally:(fun () -> Obs.Registry.disable ())
    (fun () ->
      check "recorder disarmed after raise" false (Obs.Trace.active ());
      (* the next trace starts from a clean buffer and clean baselines *)
      let events = traced_dcheck ~n:120 ~seed:21 () in
      let stale =
        List.exists
          (function Obs.Trace.Meta { label; _ } -> label = "leak" | _ -> false)
          events
      in
      check "no stale events inherited" false stale;
      check "fresh trace still consistent" true
        (Obs.Trace.check_invariants events = []))

(* regression for the serve scheduler's isolation contract: aborting one
   registry's trace (an engine raising mid-request) must leave another
   registry's recorder armed with its events intact *)

let test_trace_abort_scoped_to_registry () =
  let r1 = Obs.Registry.create () in
  let r2 = Obs.Registry.create () in
  Obs.Registry.scoped r1 (fun () -> Obs.Trace.start ~label:"keep" ~n:1 ());
  Obs.Registry.scoped r2 (fun () ->
      Obs.Trace.start ~label:"doomed" ~n:1 ();
      Obs.Trace.abort ();
      check "aborted recorder disarmed" false (Obs.Trace.active ()));
  Obs.Registry.scoped r1 (fun () ->
      check "concurrent recorder still armed" true (Obs.Trace.active ());
      let events = Obs.Trace.finish () in
      check "survivor kept its own events" true
        (List.exists
           (function
             | Obs.Trace.Meta { label; _ } -> label = "keep" | _ -> false)
           events);
      check "no events leaked from the aborted trace" false
        (List.exists
           (function
             | Obs.Trace.Meta { label; _ } -> label = "doomed" | _ -> false)
           events))

let test_trace_messages_match_counter () =
  let events = traced_dcheck ~n:300 ~seed:7 () in
  let per_round = Obs.Trace.total_messages ~engine:"message_passing" events in
  check "trace has rounds" true (per_round > 0);
  check_int "round sums equal the engine counter delta" per_round
    (match Obs.Trace.counter_value "local.mp.messages" events with
    | Some v -> v
    | None -> -1)

(* seq-vs-par: the deterministic projection of a traced run must not
   depend on the pool size (pool/chunk data is excluded by design) *)

let test_trace_seq_par_identical () =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      Pool.set_size 1;
      let seq = traced_dcheck ~n:300 ~seed:11 () in
      check "sequential trace nonempty" true (seq <> []);
      List.iter
        (fun s ->
          Pool.set_size s;
          let par = traced_dcheck ~n:300 ~seed:11 () in
          check
            (Printf.sprintf "projection identical at pool size %d" s)
            true
            (Obs.Trace.deterministic_equal seq par))
        [ 2; 4 ])

let suite =
  [
    ("counter arithmetic and gating", `Quick, test_counter_arithmetic);
    ("histogram arithmetic and gating", `Quick, test_histogram_arithmetic);
    ("registry find-or-create", `Quick, test_registry_sharing);
    ("registry isolation", `Quick, test_registry_isolation);
    ("trace abort scoped to registry", `Quick, test_trace_abort_scoped_to_registry);
    ("jsonl round-trip", `Quick, test_jsonl_round_trip);
    ("json parser rejects garbage", `Quick, test_json_parser_rejects_garbage);
    ("json value round-trips", `Quick, test_json_value_round_trips);
    ("trace record disarms on raise", `Quick, test_trace_record_disarms_on_raise);
    ("trace messages match counter", `Quick, test_trace_messages_match_counter);
    ("seq-vs-par telemetry", `Quick, test_trace_seq_par_identical);
  ]
