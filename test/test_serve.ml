(* The serve layer: protocol framing (malformed frames become structured
   errors, never exceptions escaping the accept loop), the LRU artifact
   cache, scheduler admission/backpressure, and a live in-process server
   exercised through real sockets — including two interleaved clients
   whose replies must carry only their own request's telemetry. *)

module Serve = Repro_serve
module Protocol = Serve.Protocol
module Cache = Serve.Cache
module Scheduler = Serve.Scheduler
module Json = Repro_obs.Json
module Obs = Repro_obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let member_str name j =
  match Json.member name j with Some (Json.String s) -> Some s | _ -> None

let member_int name j =
  match Json.member name j with Some j -> Json.to_int j | _ -> None

let is_ok j = match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false

(* ------------------------------------------------------------------ *)
(* protocol framing over a socketpair: the decoder must map every kind of
   malformed input to a structured [decode_error] *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f a b)

let write_all fd s =
  let b = Bytes.of_string s in
  let sent = ref 0 in
  while !sent < Bytes.length b do
    sent := !sent + Unix.write fd b !sent (Bytes.length b - !sent)
  done

let header_of_len len =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.to_string b

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let j =
        Json.Obj [ ("op", Json.String "solve"); ("n", Json.Int 42) ]
      in
      Protocol.write_frame a j;
      match Protocol.read_frame b with
      | Ok j' -> check_str "roundtrip" (Json.to_string j) (Json.to_string j')
      | Error e -> Alcotest.fail (Protocol.decode_error_to_string e))

let test_frame_eof () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Eof -> ()
      | _ -> Alcotest.fail "expected Eof")

let test_frame_truncated_header () =
  with_socketpair (fun a b ->
      write_all a "\x00\x00";
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Protocol.read_frame b with
      | Error Protocol.Truncated -> ()
      | _ -> Alcotest.fail "expected Truncated on short header")

let test_frame_truncated_payload () =
  with_socketpair (fun a b ->
      write_all a (header_of_len 10 ^ "abcd");
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Protocol.read_frame b with
      | Error Protocol.Truncated -> ()
      | _ -> Alcotest.fail "expected Truncated on short payload")

let test_frame_oversized () =
  with_socketpair (fun a b ->
      write_all a (header_of_len (Protocol.max_frame + 1));
      match Protocol.read_frame b with
      | Error (Protocol.Oversized n) ->
        check_int "declared size" (Protocol.max_frame + 1) n
      | _ -> Alcotest.fail "expected Oversized")

let test_frame_negative_length () =
  with_socketpair (fun a b ->
      write_all a "\xff\xff\xff\xff";
      match Protocol.read_frame b with
      | Error (Protocol.Oversized _) -> ()
      | _ -> Alcotest.fail "expected Oversized on negative length")

let test_frame_garbage_payload () =
  with_socketpair (fun a b ->
      write_all a (header_of_len 5 ^ "hel{o");
      match Protocol.read_frame b with
      | Error (Protocol.Bad_json _) -> ()
      | _ -> Alcotest.fail "expected Bad_json")

let test_request_hash_canonical () =
  let a =
    Json.Obj
      [
        ("op", Json.String "solve");
        ("n", Json.Int 7);
        ("inner", Json.Obj [ ("x", Json.Int 1); ("y", Json.Int 2) ]);
      ]
  in
  let b =
    Json.Obj
      [
        ("inner", Json.Obj [ ("y", Json.Int 2); ("x", Json.Int 1) ]);
        ("n", Json.Int 7);
        ("op", Json.String "solve");
      ]
  in
  let c = Json.Obj [ ("op", Json.String "solve"); ("n", Json.Int 8) ] in
  check_str "key order is canonical" (Protocol.request_hash a)
    (Protocol.request_hash b);
  check "different requests differ" true
    (Protocol.request_hash a <> Protocol.request_hash c)

(* ------------------------------------------------------------------ *)
(* cache *)

let test_cache_hit_miss_evict () =
  let c = Cache.create ~capacity:2 "test" in
  let builds = ref 0 in
  let get k =
    fst (Cache.find_or_add c k (fun () -> incr builds; k))
  in
  check "first is a miss" false (get "a");
  check "second is a hit" true (get "a");
  check_int "one build" 1 !builds;
  ignore (get "b");
  ignore (get "a");
  (* LRU is "b": inserting "c" evicts it *)
  ignore (get "c");
  check "a survived (recently used)" true (Cache.mem c "a");
  check "b evicted (least recent)" false (Cache.mem c "b");
  let s = Cache.stats c in
  check_int "hits" 2 s.Cache.hits;
  check_int "misses" 3 s.Cache.misses;
  check_int "evictions" 1 s.Cache.evictions;
  check_int "size" 2 s.Cache.size

let test_cache_build_failure_not_cached () =
  let c = Cache.create "test" in
  (try ignore (Cache.find_or_add c "k" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check "failed build not cached" false (Cache.mem c "k");
  let hit, v = Cache.find_or_add c "k" (fun () -> 7) in
  check "retry is a miss" false hit;
  check_int "retry builds" 7 v

(* ------------------------------------------------------------------ *)
(* scheduler: FIFO order, bounded admission, busy backpressure,
   exception containment, drain on shutdown *)

let test_scheduler_busy_and_order () =
  let sched = Scheduler.create ~capacity:1 () in
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let gate_open = ref false in
  let blocker ~queue_ns:_ =
    Mutex.lock gate_m;
    while not !gate_open do
      Condition.wait gate_c gate_m
    done;
    Mutex.unlock gate_m;
    Json.Obj [ ("ok", Json.Bool true); ("job", Json.Int 0) ]
  in
  let t1 =
    match Scheduler.submit sched blocker with
    | `Accepted t -> t
    | _ -> Alcotest.fail "first submit must be accepted"
  in
  (* wait for the executor to pick job 1 up, freeing the queue slot *)
  let rec settle n =
    if Scheduler.depth sched > 0 && n > 0 then (Thread.delay 0.01; settle (n - 1))
  in
  settle 200;
  let t2 =
    match
      Scheduler.submit sched (fun ~queue_ns:_ ->
          Json.Obj [ ("ok", Json.Bool true); ("job", Json.Int 2) ])
    with
    | `Accepted t -> t
    | _ -> Alcotest.fail "second submit fills the queue"
  in
  (match Scheduler.submit sched (fun ~queue_ns:_ -> Json.Null) with
  | `Busy -> ()
  | _ -> Alcotest.fail "third submit must be refused: queue is full");
  Mutex.lock gate_m;
  gate_open := true;
  Condition.broadcast gate_c;
  Mutex.unlock gate_m;
  check_int "job 1 reply" 0
    (Option.get (member_int "job" (Scheduler.wait t1)));
  check_int "job 2 reply (FIFO)" 2
    (Option.get (member_int "job" (Scheduler.wait t2)));
  let executed, rejected, depth = Scheduler.stats sched in
  check_int "executed" 2 executed;
  check_int "rejected" 1 rejected;
  check_int "depth drained" 0 depth;
  Scheduler.shutdown sched;
  (match Scheduler.submit sched (fun ~queue_ns:_ -> Json.Null) with
  | `Shutdown -> ()
  | _ -> Alcotest.fail "submit after shutdown")

let test_scheduler_exception_contained () =
  let sched = Scheduler.create () in
  let t =
    match Scheduler.submit sched (fun ~queue_ns:_ -> failwith "kaboom") with
    | `Accepted t -> t
    | _ -> Alcotest.fail "accepted"
  in
  let reply = Scheduler.wait t in
  check "raising job yields an error reply" false (is_ok reply);
  check_str "internal code" "internal" (Option.get (member_str "error" reply));
  (* the executor survived *)
  let t2 =
    match Scheduler.submit sched (fun ~queue_ns:_ -> Json.Obj [ ("ok", Json.Bool true) ]) with
    | `Accepted t -> t
    | _ -> Alcotest.fail "accepted after exception"
  in
  check "executor still alive" true (is_ok (Scheduler.wait t2));
  Scheduler.shutdown sched

(* ------------------------------------------------------------------ *)
(* live server over a real unix socket *)

let with_server ?(queue = 64) ?log f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-serve-test-%d.sock" (Unix.getpid ()))
  in
  let config =
    {
      (Serve.Server.default_config (Serve.Server.Unix_path path)) with
      Serve.Server.queue_capacity = queue;
      log_path = log;
    }
  in
  let srv = Serve.Server.start config in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop srv)
    (fun () -> f srv (Serve.Server.Unix_path path))

let call addr req = Serve.Client.with_connection addr (fun c -> Serve.Client.call c req)

let solve_req n seed =
  Json.Obj
    [
      ("op", Json.String "solve");
      ("problem", Json.String "so-det");
      ("n", Json.Int n);
      ("seed", Json.Int seed);
    ]

let test_server_solve_and_reply_cache () =
  with_server (fun _srv addr ->
      let r1 = call addr (solve_req 400 5) in
      check "solve ok" true (is_ok r1);
      check "solve valid" true
        (match Json.member "valid" r1 with Some (Json.Bool b) -> b | _ -> false);
      check_str "first is a miss" "miss" (Option.get (member_str "cache" r1));
      let r2 = call addr (solve_req 400 5) in
      check_str "repeat is a hit" "hit" (Option.get (member_str "cache" r2));
      (* field order must not defeat the canonical hash *)
      let permuted =
        Json.Obj
          [
            ("seed", Json.Int 5);
            ("n", Json.Int 400);
            ("problem", Json.String "so-det");
            ("op", Json.String "solve");
          ]
      in
      check_str "permuted fields still hit" "hit"
        (Option.get (member_str "cache" (call addr permuted))))

let test_server_bad_requests () =
  with_server (fun _srv addr ->
      let r = call addr (Json.Obj [ ("n", Json.Int 3) ]) in
      check_str "missing op" "bad-request" (Option.get (member_str "error" r));
      let r = call addr (Json.Obj [ ("op", Json.String "frobnicate") ]) in
      check_str "unknown op" "bad-request" (Option.get (member_str "error" r));
      let r =
        call addr
          (Json.Obj [ ("op", Json.String "solve"); ("problem", Json.String "nope") ])
      in
      check_str "unknown problem" "bad-request" (Option.get (member_str "error" r));
      let r =
        call addr (Json.Obj [ ("op", Json.String "audit"); ("problem", Json.Int 3) ])
      in
      check_str "ill-typed field" "bad-request" (Option.get (member_str "error" r));
      (* errors are not cached: a good request identical to nothing above
         still works, and the bad one stays bad rather than replaying *)
      let r = call addr (Json.Obj [ ("op", Json.String "frobnicate") ]) in
      check "error reply carries no cache field" true
        (member_str "cache" r = None))

let test_server_malformed_frame () =
  with_server (fun _srv addr ->
      let path = match addr with Serve.Server.Unix_path p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      write_all fd (header_of_len 7 ^ "not{json");
      let reply =
        match Protocol.read_frame fd with
        | Ok j -> j
        | Error e -> Alcotest.fail (Protocol.decode_error_to_string e)
      in
      Unix.close fd;
      check_str "garbage frame yields structured bad-frame" "bad-frame"
        (Option.get (member_str "error" reply));
      (* and the server is still serving *)
      check "server alive after bad frame" true (is_ok (call addr (solve_req 300 1))))

let test_server_stats_and_audit () =
  with_server (fun srv addr ->
      let r =
        call addr
          (Json.Obj
             [
               ("op", Json.String "audit");
               ("problem", Json.String "so-det");
               ("n", Json.Int 200);
             ])
      in
      check "audit ok" true (is_ok r);
      check "certificate ok" true
        (match Json.member "cert_ok" r with Some (Json.Bool b) -> b | _ -> false);
      let stats = call addr (Json.Obj [ ("op", Json.String "stats") ]) in
      check "stats ok" true (is_ok stats);
      (match Json.member "caches" stats with
      | Some (Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "stats must list the caches");
      (* in-process view agrees with the wire view on the request count *)
      let wire_ops = Json.member "requests" stats in
      let local_ops = Json.member "requests" (Serve.Server.stats_json srv) in
      check "stats_json matches the stats op" true
        (Option.map Json.to_string wire_ops <> None
        && Option.map Json.to_string wire_ops = Option.map Json.to_string local_ops))

(* two clients interleaving distinct request streams: each reply's
   telemetry must describe only its own request — the deterministic
   solver's counters never leak into the randomized solver's reply and
   vice versa, whatever the arrival order *)
let test_server_two_client_isolation () =
  with_server (fun _srv addr ->
      let telemetry_names reply =
        match Json.member "telemetry" reply with
        | Some (Json.Obj fields) -> List.map fst fields
        | _ -> []
      in
      let run_client problem seeds results =
        Serve.Client.with_connection addr (fun c ->
            results :=
              List.map
                (fun seed ->
                  Serve.Client.call c
                    (Json.Obj
                       [
                         ("op", Json.String "solve");
                         ("problem", Json.String problem);
                         ("n", Json.Int 300);
                         ("seed", Json.Int seed);
                       ]))
                seeds)
      in
      let det_replies = ref [] and rand_replies = ref [] in
      let t1 = Thread.create (fun () -> run_client "so-det" [ 11; 12; 13 ] det_replies) () in
      let t2 = Thread.create (fun () -> run_client "so-rand" [ 11; 12; 13 ] rand_replies) () in
      Thread.join t1;
      Thread.join t2;
      check_int "det client got all replies" 3 (List.length !det_replies);
      check_int "rand client got all replies" 3 (List.length !rand_replies);
      List.iter
        (fun r ->
          check "det reply ok" true (is_ok r);
          let names = telemetry_names r in
          check "det telemetry has det counters" true
            (List.mem "problems.so.det.runs" names);
          check "det telemetry free of rand counters" false
            (List.exists
               (fun n -> String.length n >= 16 && String.sub n 0 16 = "problems.so.rand")
               names))
        !det_replies;
      List.iter
        (fun r ->
          check "rand reply ok" true (is_ok r);
          let names = telemetry_names r in
          check "rand telemetry has rand counters" true
            (List.mem "problems.so.rand.runs" names);
          check "rand telemetry free of det counters" false
            (List.mem "problems.so.det.runs" names))
        !rand_replies)

(* ------------------------------------------------------------------ *)
(* metrics exposition, span trees, cache bypass, request log *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_server_metrics_op () =
  with_server (fun _srv addr ->
      check "warm-up solve ok" true (is_ok (call addr (solve_req 300 3)));
      let r = call addr (Json.Obj [ ("op", Json.String "metrics") ]) in
      check "metrics ok" true (is_ok r);
      check_str "prometheus content type" "text/plain; version=0.0.4"
        (Option.get (member_str "content_type" r));
      let body = Option.get (member_str "body" r) in
      check "solve counter exposed" true
        (contains body "repro_serve_requests_solve 1");
      check "metrics op counts itself" true
        (contains body "repro_serve_requests_metrics");
      check "latency histogram exposed" true
        (contains body "repro_serve_op_solve_latency_ns_bucket");
      check "queue-wait histogram exposed" true
        (contains body "repro_serve_queue_wait_ns_count");
      check "+Inf bucket present" true (contains body "le=\"+Inf\"");
      check "computed gauges present" true
        (contains body "repro_uptime_seconds"
        && contains body "repro_scheduler_queue_depth");
      (* the names list is the checker's ground truth: everything the
         registry knows must have made it into the exposition *)
      (match Json.member "names" r with
      | Some (Json.List names) ->
        check "names nonempty" true (names <> []);
        List.iter
          (fun n ->
            match n with
            | Json.String n ->
              check (Printf.sprintf "name %s appears in body" n) true
                (contains body n)
            | _ -> Alcotest.fail "names must be strings")
          names
      | _ -> Alcotest.fail "metrics reply must carry names");
      (* a made-up op is clamped to "other", not a fresh metric *)
      let (_ : Json.t) = call addr (Json.Obj [ ("op", Json.String "zzz") ]) in
      let r2 = call addr (Json.Obj [ ("op", Json.String "metrics") ]) in
      let body2 = Option.get (member_str "body" r2) in
      check "unknown ops clamp to other" true
        (contains body2 "repro_serve_requests_other 1");
      check "no attacker-named metric" false (contains body2 "zzz"))

(* so-wave runs round-by-round over the frontier wave, so the tree has
   per-round spans (so-det is the centralized BFS solver — no rounds) *)
let spans_req n seed =
  Json.Obj
    [
      ("op", Json.String "solve");
      ("problem", Json.String "so-wave");
      ("n", Json.Int n);
      ("seed", Json.Int seed);
      ("spans", Json.Bool true);
    ]

let reply_spans reply =
  match Json.member "spans" reply with
  | Some (Json.List items) ->
    List.filter_map
      (fun j ->
        match Obs.Trace.event_of_json j with
        | Ok (Obs.Trace.Span s) -> Some s
        | _ -> None)
      items
  | _ -> []

let test_server_span_tree () =
  with_server (fun _srv addr ->
      (* a failed span request first: its aborted recording must not
         leak into the next request's tree *)
      let bad =
        call addr
          (Json.Obj
             [
               ("op", Json.String "solve");
               ("problem", Json.String "nope");
               ("spans", Json.Bool true);
             ])
      in
      check "bad span request is an error" false (is_ok bad);
      let r = call addr (spans_req 400 5) in
      check "span solve ok" true (is_ok r);
      check_str "span request bypasses the cache" "bypass"
        (Option.get (member_str "cache" r));
      let tid =
        match Json.member "trace_id" r with
        | Some (Json.Int t) -> t
        | _ -> Alcotest.fail "reply must carry trace_id"
      in
      let spans = reply_spans r in
      check "spans nonempty" true (spans <> []);
      check "all spans in the reply's trace" true
        (List.for_all (fun s -> s.Obs.Trace.trace_id = tid) spans);
      let labels = List.map (fun s -> s.Obs.Trace.label) spans in
      List.iter
        (fun l -> check (Printf.sprintf "has %s span" l) true (List.mem l labels))
        [
          "serve.solve"; "serve.cache.lookup"; "serve.queue.wait";
          "serve.execute"; "serve.encode"; "serve.artifact.build";
        ];
      check "has per-round engine spans" true
        (List.exists
           (fun l ->
             List.mem l
               [ "mp.round"; "flood.round"; "frontier.round"; "wave.round" ])
           labels);
      (* the tree nests: root is serve.solve, execute under root, engine
         rounds under execute's subtree *)
      let events = List.map (fun s -> Obs.Trace.Span s) spans in
      check "span invariants hold" true (Obs.Trace.check_invariants events = []);
      let find l = List.find (fun s -> s.Obs.Trace.label = l) spans in
      let root = find "serve.solve" in
      check_int "serve root has no parent" (-1) root.Obs.Trace.parent;
      check_int "execute under the root" root.Obs.Trace.span_id
        (find "serve.execute").Obs.Trace.parent;
      (* a second span request gets a fresh trace, never a replay *)
      let r2 = call addr (spans_req 400 5) in
      check_str "repeat still bypasses" "bypass"
        (Option.get (member_str "cache" r2));
      let tid2 =
        match Json.member "trace_id" r2 with
        | Some (Json.Int t) -> t
        | _ -> Alcotest.fail "second reply must carry trace_id"
      in
      check "fresh trace id per request" false (tid = tid2);
      check "fresh spans per request" true (reply_spans r2 <> []);
      (* and the plain path is untouched by all this *)
      let plain = call addr (solve_req 400 5) in
      check "plain reply has no spans" true (Json.member "spans" plain = None))

let test_server_log_schema () =
  let log =
    Filename.temp_file "repro-serve-log" ".jsonl"
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with _ -> ())
    (fun () ->
      with_server ~log (fun _srv addr ->
          check "miss ok" true (is_ok (call addr (solve_req 300 9)));
          check "hit ok" true (is_ok (call addr (solve_req 300 9)));
          check "stats ok" true
            (is_ok (call addr (Json.Obj [ ("op", Json.String "stats") ]))));
      (* server stopped: the log is flushed and closed *)
      let ic = open_in log in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "one line per request" 3 (List.length lines);
      let parsed =
        List.map
          (fun l ->
            match Json.of_string l with
            | Ok j -> j
            | Error e -> Alcotest.failf "log line not JSON: %s" e)
          lines
      in
      List.iter
        (fun j ->
          check "line has ts" true (Json.member "ts" j <> None);
          check "line has queue_ms" true
            (match Json.member "queue_ms" j with
            | Some (Json.Float q) -> q >= 0.0
            | _ -> false);
          check "line has trace_id" true
            (match Json.member "trace_id" j with
            | Some (Json.Int t) -> t > 0
            | _ -> false))
        parsed;
      (* trace ids are per-request, never reused *)
      let tids =
        List.filter_map
          (fun j ->
            match Json.member "trace_id" j with
            | Some (Json.Int t) -> Some t
            | _ -> None)
          parsed
      in
      check "distinct trace ids" true
        (List.length (List.sort_uniq compare tids) = List.length tids);
      (* the cache hit never queued *)
      match List.nth parsed 1 with
      | j ->
        check_str "second line is the hit" "hit"
          (Option.get (member_str "cache" j));
        check "hit has zero queue wait" true
          (match Json.member "queue_ms" j with
          | Some (Json.Float q) -> q = 0.0
          | _ -> false))

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame eof" `Quick test_frame_eof;
    Alcotest.test_case "frame truncated header" `Quick test_frame_truncated_header;
    Alcotest.test_case "frame truncated payload" `Quick test_frame_truncated_payload;
    Alcotest.test_case "frame oversized" `Quick test_frame_oversized;
    Alcotest.test_case "frame negative length" `Quick test_frame_negative_length;
    Alcotest.test_case "frame garbage payload" `Quick test_frame_garbage_payload;
    Alcotest.test_case "request hash canonical" `Quick test_request_hash_canonical;
    Alcotest.test_case "cache hit/miss/evict" `Quick test_cache_hit_miss_evict;
    Alcotest.test_case "cache failed build" `Quick test_cache_build_failure_not_cached;
    Alcotest.test_case "scheduler busy + fifo" `Quick test_scheduler_busy_and_order;
    Alcotest.test_case "scheduler exception contained" `Quick
      test_scheduler_exception_contained;
    Alcotest.test_case "server solve + reply cache" `Quick
      test_server_solve_and_reply_cache;
    Alcotest.test_case "server bad requests" `Quick test_server_bad_requests;
    Alcotest.test_case "server malformed frame" `Quick test_server_malformed_frame;
    Alcotest.test_case "server stats + audit" `Quick test_server_stats_and_audit;
    Alcotest.test_case "server two-client isolation" `Quick
      test_server_two_client_isolation;
    Alcotest.test_case "server metrics exposition" `Quick test_server_metrics_op;
    Alcotest.test_case "server span tree" `Quick test_server_span_tree;
    Alcotest.test_case "server log schema" `Quick test_server_log_schema;
  ]
