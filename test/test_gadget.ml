(* Tests for the (log, Δ)-gadget family: construction, each §4.2/§4.3
   constraint individually, the Ψ error-pointer problem, the prover V, the
   node-edge encoding Ψ_G (with adversarial forging attempts: Lemma 9). *)

module G = Repro_graph.Multigraph
module T = Repro_graph.Traversal
module L = Repro_gadget.Labels
module B = Repro_gadget.Build
module C = Repro_gadget.Check
module Psi = Repro_gadget.Psi
module V = Repro_gadget.Verifier
module NP = Repro_gadget.Ne_psi
module Corrupt = Repro_gadget.Corrupt
module Meter = Repro_local.Meter
module Labeling = Repro_lcl.Labeling

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let valid_gadget ?(delta = 3) ?(height = 4) () = B.gadget ~delta ~height

let rules_of ~delta t =
  C.violations ~delta t |> List.map (fun v -> v.C.rule) |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* construction *)

let test_sizes () =
  check_int "sub size" 15 (B.sub_gadget_size ~height:4);
  check_int "gadget size" 46 (B.gadget_size ~delta:3 ~height:4);
  check_int "height_for exact" 4 (B.height_for ~delta:3 ~target:46);
  check_int "height_for above" 5 (B.height_for ~delta:3 ~target:47);
  check_int "height_for minimum" 2 (B.height_for ~delta:3 ~target:1)

let test_valid_gadgets_pass () =
  List.iter
    (fun (delta, height) ->
      let t = B.gadget ~delta ~height in
      check
        (Printf.sprintf "valid d=%d h=%d" delta height)
        true
        (C.is_valid ~delta t))
    [ (1, 2); (2, 3); (3, 2); (3, 6); (4, 4); (5, 3) ]

let test_ports_exist () =
  let delta = 4 and height = 5 in
  let t = B.gadget ~delta ~height in
  for i = 1 to delta do
    let p = B.port_node ~delta ~height i in
    check ("port " ^ string_of_int i) true (t.L.nodes.(p).L.port = Some i);
    check "port index matches" true (t.L.nodes.(p).L.kind = L.Index i)
  done

let test_center_structure () =
  let t = valid_gadget () in
  check "center kind" true (t.L.nodes.(B.center).L.kind = L.Center);
  check_int "center degree" 3 (G.degree t.L.graph B.center)

let test_diameter_logarithmic () =
  (* gadget diameter grows linearly in height = logarithmically in size *)
  let diam h = T.diameter (B.gadget ~delta:3 ~height:h).L.graph in
  let d4 = diam 4 and d8 = diam 8 in
  check "linear in height" true (d8 <= (2 * d4) + 4 && d8 > d4)

let test_input_coloring_valid () =
  List.iter
    (fun h ->
      let t = B.gadget ~delta:3 ~height:h in
      check ("color_ok h=" ^ string_of_int h) true (L.color_ok t);
      check ("flags_ok h=" ^ string_of_int h) true (L.flags_ok t))
    [ 2; 3; 5; 7 ]

let test_follow () =
  let delta = 3 and height = 3 in
  let t = B.gadget ~delta ~height in
  let root = B.node_of_coord ~delta ~height ~sub:1 ~level:0 ~x:0 in
  check "root up = center" true (L.follow t root L.Up = Some B.center);
  let l1 = B.node_of_coord ~delta ~height ~sub:1 ~level:1 ~x:0 in
  check "root lchild" true (L.follow t root L.LChild = Some l1);
  check "lchild parent" true (L.follow t l1 L.Parent = Some root);
  check "2c path closes" true
    (L.follow_path t root [ L.LChild; L.Right; L.Parent ] = Some root);
  let bot = B.node_of_coord ~delta ~height ~sub:1 ~level:2 ~x:0 in
  check "2d path closes" true
    (L.follow_path t bot [ L.Right; L.LChild; L.Left; L.Parent ] = Some bot
    || L.follow_path t bot [ L.Right; L.LChild; L.Left; L.Parent ] = None)

(* ------------------------------------------------------------------ *)
(* each constraint individually *)

let relabel t h lab = L.with_truthful_flags (L.relabel_half t h lab)

let test_rule_1b_duplicate_labels () =
  let t = valid_gadget () in
  (* give some node two Parent halves: find a half labeled Left and make
     it Parent on a node that already has a Parent *)
  let g = t.L.graph in
  let target = ref (-1) in
  for h = 0 to (2 * G.m g) - 1 do
    if !target < 0 && t.L.halves.(h) = L.Left
       && L.has_half t (G.half_node g h) L.Parent
    then target := h
  done;
  let t' = relabel t !target L.Parent in
  check "1b reported" true (List.mem "1b" (rules_of ~delta:3 t'))

let test_rule_1c_wrong_index () =
  let t = valid_gadget () in
  (* node 1 is the root of sub-gadget 1 *)
  let t' = L.relabel_node t 2 { (t.L.nodes.(2)) with L.kind = L.Index 2 } in
  check "1c reported" true (List.mem "1c" (rules_of ~delta:3 t'))

let test_rule_1d_port_mismatch () =
  let delta = 3 and height = 4 in
  let t = B.gadget ~delta ~height in
  let p = B.port_node ~delta ~height 1 in
  let t' = L.relabel_node t p { (t.L.nodes.(p)) with L.port = Some 2 } in
  check "1d reported" true (List.mem "1d" (rules_of ~delta:3 t'))

let test_rule_2a_left_right () =
  let t = valid_gadget () in
  let g = t.L.graph in
  let target = ref (-1) in
  for h = 0 to (2 * G.m g) - 1 do
    if !target < 0 && t.L.halves.(h) = L.Left then target := h
  done;
  let t' = relabel t !target L.Right in
  check "2a or 1b reported" true
    (let r = rules_of ~delta:3 t' in
     List.mem "2a" r || List.mem "1b" r)

let test_rule_2b_parent_child () =
  let t = valid_gadget () in
  let g = t.L.graph in
  let target = ref (-1) in
  for h = 0 to (2 * G.m g) - 1 do
    if !target < 0 && t.L.halves.(h) = L.LChild
       && t.L.halves.(G.mate h) = L.Parent
    then target := h
  done;
  let t' = relabel t !target L.Left in
  let r = rules_of ~delta:3 t' in
  check "2b-ish reported" true (r <> [])

let test_rule_2c_broken_square () =
  (* break the LChild-Right-Parent square: rewire a Right edge of the
     bottom level to skip one node by relabeling; simplest: relabel a
     bottom Right half as Parent is caught by other rules, so instead drop
     a horizontal edge: 2c needs "path exists", dropping breaks nothing;
     instead corrupt by pointing a LChild to the wrong node via an extra
     edge. We verify that the specific 2c rule fires on a hand-built
     broken square. *)
  let delta = 1 and height = 3 in
  let t = B.sub_gadget ~index:1 ~height in
  (* sub-gadget alone: nodes 0=root,1=(1,0),2=(1,1),3..6 bottom *)
  (* detach the horizontal edge (1,0)-(1,1) and reattach as (1,0)-(2,0)'s
     slot: relabel the Right half of node 1 pointing to 2 into a Right
     half pointing... we cannot rewire labels only; instead relabel the
     Parent half of node 4 ((2,1)) to point Left, breaking the square at
     node 3. *)
  ignore delta;
  let g = t.L.graph in
  (* find the half at node 3 labeled Right (to node 4) and make its mate
     inconsistent: relabel node 4's Left half as Parent *)
  let target = ref (-1) in
  for h = 0 to (2 * G.m g) - 1 do
    if !target < 0 && G.half_node g h = 4 && t.L.halves.(h) = L.Left then
      target := h
  done;
  if !target >= 0 then begin
    let t' = relabel t !target L.Parent in
    check "square corruption caught" true (rules_of ~delta:1 t' <> [])
  end
  else check "setup found no half" true true

let test_rule_3e_root_shape () =
  let t = valid_gadget () in
  (* remove the LChild half of the root of sub-gadget 1 by relabeling it
     as Down 1 (nonsense on an Index node) *)
  let g = t.L.graph in
  let root = 1 in
  let target = ref (-1) in
  Array.iter
    (fun h -> if t.L.halves.(h) = L.LChild then target := h)
    (G.halves g root);
  let t' = relabel t !target (L.Down 1) in
  let r = rules_of ~delta:3 t' in
  check "3e or 1c reported" true (List.mem "3e" r || List.mem "1c" r)

let test_rule_3f_single_child () =
  let t = valid_gadget () in
  let g = t.L.graph in
  (* relabel an RChild half as Right on an internal node *)
  let target = ref (-1) in
  for h = 0 to (2 * G.m g) - 1 do
    let v = G.half_node g h in
    if !target < 0 && t.L.halves.(h) = L.RChild && L.has_half t v L.LChild
       && L.has_half t v L.Right
    then target := h
  done;
  if !target >= 0 then begin
    let t' = relabel t !target L.Parent in
    check "reported" true (rules_of ~delta:3 t' <> [])
  end

let test_rule_3h_fake_port () =
  let t = valid_gadget () in
  (* an internal node claims to be a port *)
  let t' = L.relabel_node t 2 { (t.L.nodes.(2)) with L.port = Some 1 } in
  let r = rules_of ~delta:3 t' in
  check "3h or 1d" true (List.mem "3h" r || List.mem "1d" r)

let test_rule_3h_dropped_port () =
  let delta = 3 and height = 4 in
  let t = B.gadget ~delta ~height in
  let p = B.port_node ~delta ~height 2 in
  let t' = L.relabel_node t p { (t.L.nodes.(p)) with L.port = None } in
  check "3h reported" true (List.mem "3h" (rules_of ~delta:3 t'))

let test_rule_c2a_center_degree () =
  (* a gadget built for delta=3 checked against delta=4 fails at the
     center *)
  let t = valid_gadget () in
  check "c2a reported" true (List.mem "c2a" (rules_of ~delta:4 t))

let test_rule_c2d_duplicate_subgadget () =
  let t = valid_gadget ~delta:2 () in
  (* relabel all of sub-gadget 2 as Index 1 (and its Down edge) *)
  let g = t.L.graph in
  let t' = ref t in
  for v = 0 to G.n g - 1 do
    match t.L.nodes.(v).L.kind with
    | L.Index 2 ->
      t' :=
        L.relabel_node !t' v
          {
            (t.L.nodes.(v)) with
            L.kind = L.Index 1;
            L.port = (match t.L.nodes.(v).L.port with Some _ -> Some 1 | None -> None);
          }
    | L.Index _ | L.Center -> ()
  done;
  (* also fix the center's Down_2 label to Down_1 so only c2d can fire *)
  let tfix = ref !t' in
  Array.iter
    (fun h ->
      if (!t').L.halves.(h) = L.Down 2 then
        tfix := L.relabel_half !tfix h (L.Down 1))
    (G.halves g B.center);
  let r = rules_of ~delta:2 (L.with_truthful_flags !tfix) in
  check "c2d or 1b reported" true (List.mem "c2d" r || List.mem "1b" r)

let test_rule_fl_stale_flags () =
  let t = valid_gadget () in
  let rng = Random.State.make [| 31 |] in
  let t' = Corrupt.apply rng Corrupt.Stale_flags t in
  check "fl reported" true (List.mem "fl" (rules_of ~delta:3 t'))

let test_rule_1a_self_loop () =
  let t = valid_gadget ~height:3 () in
  let g = t.L.graph in
  let b = G.Builder.create (G.n g) in
  G.iter_edges g ~f:(fun _ u v -> ignore (G.Builder.add_edge b u v));
  ignore (G.Builder.add_edge b 5 5);
  let g' = G.Builder.build b in
  let extend a x y = Array.append a [| x; y |] in
  let t' =
    L.with_truthful_flags
      {
        L.graph = g';
        nodes = t.L.nodes;
        halves = extend t.L.halves L.Left L.Right;
        half_color2 = extend t.L.half_color2 0 0;
        half_flags = extend t.L.half_flags t.L.half_flags.(0) t.L.half_flags.(0);
      }
  in
  check "1a reported" true (List.mem "1a" (rules_of ~delta:3 t'))

let test_lemma7_wraparound () =
  (* Lemma 7's adversarial structure: a sub-gadget whose bottom level
     wraps around into a cycle cannot satisfy all constraints. Build a
     2-level "sub-gadget" where the bottom is a cycle of 2 nodes. *)
  let b = G.Builder.create 3 in
  (* root 0, bottom 1 2 with wraparound *)
  let e01 = G.Builder.add_edge b 0 1 in
  let e02 = G.Builder.add_edge b 0 2 in
  let e12 = G.Builder.add_edge b 1 2 in
  let e21 = G.Builder.add_edge b 2 1 in
  let g = G.Builder.build b in
  let halves = Array.make 8 L.Parent in
  halves.(2 * e01) <- L.LChild;
  halves.((2 * e01) + 1) <- L.Parent;
  halves.(2 * e02) <- L.RChild;
  halves.((2 * e02) + 1) <- L.Parent;
  halves.(2 * e12) <- L.Right;
  halves.((2 * e12) + 1) <- L.Left;
  halves.(2 * e21) <- L.Right;
  halves.((2 * e21) + 1) <- L.Left;
  let nodes =
    [|
      { L.kind = L.Index 1; port = None; color2 = 0 };
      { L.kind = L.Index 1; port = None; color2 = 1 };
      { L.kind = L.Index 1; port = None; color2 = 2 };
    |]
  in
  let t =
    L.with_truthful_flags
      {
        L.graph = g;
        nodes;
        halves;
        half_color2 = Array.make 8 0;
        half_flags = Array.make 8 { L.f_right = false; f_left = false; f_child = false };
      }
  in
  check "wraparound caught" true (rules_of ~delta:1 t <> [])

(* ------------------------------------------------------------------ *)
(* Ψ and the prover V *)

let test_v_ok_on_valid () =
  List.iter
    (fun h ->
      let t = B.gadget ~delta:3 ~height:h in
      let n = G.n t.L.graph in
      let out, m = V.run ~delta:3 ~n t in
      check ("all ok h=" ^ string_of_int h) true (V.is_all_ok out);
      check "psi constraints" true (Psi.is_valid ~delta:3 t out);
      check "radius below proof radius" true
        (Meter.max_radius m <= V.proof_radius ~n))
    [ 2; 4; 6; 9 ]

let test_v_radius_grows_with_size () =
  let radius h =
    let t = B.gadget ~delta:3 ~height:h in
    let n = G.n t.L.graph in
    let _, m = V.run ~delta:3 ~n t in
    Meter.max_radius m
  in
  check "grows" true (radius 10 > radius 4)

let test_v_proofs_on_corruptions () =
  let rng = Random.State.make [| 41 |] in
  for trial = 1 to 30 do
    let t = B.gadget ~delta:3 ~height:4 in
    let t', kind = Corrupt.random rng t in
    let n = G.n t'.L.graph in
    let out, _ = V.run ~delta:3 ~n t' in
    check
      (Format.asprintf "trial %d (%a): not all ok" trial Corrupt.pp_kind kind)
      false (V.is_all_ok out);
    check
      (Format.asprintf "trial %d (%a): psi valid" trial Corrupt.pp_kind kind)
      true
      (Psi.is_valid ~delta:3 t' out)
  done

let test_psi_rejects_naked_error () =
  (* claiming Error on a valid gadget violates rule 2 *)
  let t = valid_gadget () in
  let out = Array.make (G.n t.L.graph) Psi.Ok in
  out.(3) <- Psi.Error;
  check "rejected" false (Psi.is_valid ~delta:3 t out)

let test_psi_rejects_mixed_ok () =
  let t = valid_gadget () in
  let out = Array.make (G.n t.L.graph) Psi.Ok in
  out.(3) <- Psi.Ptr Psi.PParent;
  check "rejected" false (Psi.is_valid ~delta:3 t out)

let test_psi_lemma9_all_pointer_attempts () =
  (* Lemma 9: on a valid gadget no all-error labeling passes. Try the
     natural adversarial strategies: everyone points Parent/Up toward the
     center; everyone points Right; everyone points at a fixed target. *)
  let t = valid_gadget ~height:3 () in
  let g = t.L.graph in
  let toward_center =
    Array.init (G.n g) (fun v ->
        if t.L.nodes.(v).L.kind = L.Center then Psi.Ptr (Psi.PDown 1)
        else if L.has_half t v L.Parent then Psi.Ptr Psi.PParent
        else Psi.Ptr Psi.PUp)
  in
  check "toward-center rejected" false (Psi.is_valid ~delta:3 t toward_center);
  let all_right =
    Array.init (G.n g) (fun v ->
        if L.has_half t v L.Right then Psi.Ptr Psi.PRight else Psi.Ptr Psi.PParent)
  in
  check "all-right rejected" false (Psi.is_valid ~delta:3 t all_right);
  let all_down =
    Array.init (G.n g) (fun v ->
        if t.L.nodes.(v).L.kind = L.Center then Psi.Ptr (Psi.PDown 2)
        else if L.has_half t v L.RChild then Psi.Ptr Psi.PRChild
        else Psi.Ptr Psi.PRight)
  in
  check "all-down rejected" false (Psi.is_valid ~delta:3 t all_down)

let test_psi_lemma9_exhaustive_small () =
  (* exhaustively check a small gadget: no labeling where node 0 (the
     center) uses a pointer and all others use one of two natural choices
     passes — a bounded brute-force variant of Lemma 9 *)
  let t = B.gadget ~delta:1 ~height:2 in
  let g = t.L.graph in
  let n = G.n g in
  (* options per node: pointer choices only (Ok is excluded since we test
     error labelings; Error is excluded by rule 2 on a valid gadget) *)
  let options v =
    let base = [ Psi.PParent; Psi.PRight; Psi.PLeft; Psi.PRChild; Psi.PUp ] in
    if t.L.nodes.(v).L.kind = L.Center then [ Psi.PDown 1 ] else base
  in
  let rec enumerate v acc found =
    if found then true
    else if v = n then Psi.is_valid ~delta:1 t (Array.of_list (List.rev acc))
    else
      List.exists
        (fun p -> enumerate (v + 1) (Psi.Ptr p :: acc) found)
        (options v)
  in
  check "no pointer labeling passes" false (enumerate 0 [] false)

(* ------------------------------------------------------------------ *)
(* Ψ_G: the node-edge encoding *)

let test_ne_valid_gadgets () =
  List.iter
    (fun h ->
      let t = B.gadget ~delta:3 ~height:h in
      let n = G.n t.L.graph in
      let sol, _ = NP.prove ~delta:3 ~n t in
      check ("ne prove valid h=" ^ string_of_int h) true (NP.is_valid ~delta:3 t sol);
      check "all ok" true
        (Array.for_all
           (fun (o : NP.node_out) -> o.NP.status = NP.NOk)
           sol.Labeling.v);
      check "all-ok accepted" true (NP.is_valid ~delta:3 t (NP.all_ok_solution t)))
    [ 2; 4; 6 ]

let test_ne_proofs_on_corruptions () =
  let rng = Random.State.make [| 43 |] in
  for trial = 1 to 40 do
    let t = B.gadget ~delta:3 ~height:4 in
    let t', kind = Corrupt.random rng t in
    let n = G.n t'.L.graph in
    let sol, _ = NP.prove ~delta:3 ~n t' in
    check
      (Format.asprintf "ne trial %d (%a)" trial Corrupt.pp_kind kind)
      true
      (NP.is_valid ~delta:3 t' sol);
    check
      (Format.asprintf "ne trial %d has witness" trial)
      true
      (Array.exists (fun (o : NP.node_out) -> o.NP.status = NP.NWit) sol.Labeling.v)
  done

let test_ne_forged_witness_rejected () =
  let t = valid_gadget () in
  let sol = NP.all_ok_solution t in
  sol.Labeling.v.(5) <- { NP.status = NP.NWit; chains = [] };
  check "rejected (mirror broken)" false (NP.is_valid ~delta:3 t sol)

let test_ne_forged_witness_with_mirrors_rejected () =
  let t = valid_gadget () in
  let g = t.L.graph in
  let sol = NP.all_ok_solution t in
  (* set everyone to a pointer chain toward the center, with mirrors *)
  let node_out v : NP.node_out =
    if v = 5 then { NP.status = NP.NWit; chains = [] }
    else if t.L.nodes.(v).L.kind = L.Center then
      { NP.status = NP.NPtr (Psi.PDown 1); chains = [] }
    else if L.has_half t v L.Parent then
      { NP.status = NP.NPtr Psi.PParent; chains = [] }
    else { NP.status = NP.NPtr Psi.PUp; chains = [] }
  in
  for v = 0 to G.n g - 1 do
    sol.Labeling.v.(v) <- node_out v
  done;
  for h = 0 to (2 * G.m g) - 1 do
    sol.Labeling.b.(h) <-
      { (sol.Labeling.b.(h)) with NP.mirror = node_out (G.half_node g h) }
  done;
  (* node 5's NWit has no justification on a valid gadget *)
  check "rejected" false (NP.is_valid ~delta:3 t sol)

let test_ne_forged_chain_rejected () =
  (* laying a closed chain is fine but gives no witness; an open chain on
     a valid gadget cannot satisfy the forcing constraints *)
  let t = valid_gadget () in
  let sol = NP.all_ok_solution t in
  let cid = { NP.ccolor = 0; cpos = NP.chain_last NP.K2c; ckind = NP.K2c } in
  sol.Labeling.v.(7) <- { NP.status = NP.NWit; chains = [ cid ] };
  let g = t.L.graph in
  Array.iter
    (fun h ->
      sol.Labeling.b.(h) <-
        { (sol.Labeling.b.(h)) with NP.mirror = sol.Labeling.v.(7) })
    (G.halves g 7);
  check "rejected (no from_prev chain)" false (NP.is_valid ~delta:3 t sol)

let test_ne_parallel_edge_color_proof () =
  (* duplicated edge -> the prover must convict via color claims *)
  let t = valid_gadget ~height:3 () in
  let g = t.L.graph in
  let b = G.Builder.create (G.n g) in
  G.iter_edges g ~f:(fun _ u v -> ignore (G.Builder.add_edge b u v));
  let u0, v0 = G.endpoints g 2 in
  ignore (G.Builder.add_edge b u0 v0);
  let g' = G.Builder.build b in
  let ext a x y = Array.append a [| x; y |] in
  let t' =
    L.with_truthful_flags
      {
        L.graph = g';
        nodes = t.L.nodes;
        halves = ext t.L.halves t.L.halves.(4) t.L.halves.(5);
        half_color2 = ext t.L.half_color2 t.L.half_color2.(4) t.L.half_color2.(5);
        half_flags = ext t.L.half_flags t.L.half_flags.(4) t.L.half_flags.(5);
      }
  in
  let sol, _ = NP.prove ~delta:3 ~n:(G.n g') t' in
  check "proof valid" true (NP.is_valid ~delta:3 t' sol);
  check "uses a color claim" true
    (Array.exists (fun (h : NP.half_out) -> h.NP.color_claim <> None) sol.Labeling.b)

let test_ne_chain_proof_used () =
  (* find a corruption that triggers 2c/2d and verify chains appear *)
  let rng = Random.State.make [| 47 |] in
  let found = ref false in
  let attempts = ref 0 in
  while (not !found) && !attempts < 200 do
    incr attempts;
    let t = B.gadget ~delta:3 ~height:4 in
    let t' = Corrupt.apply rng Corrupt.Relabel_half t in
    let t' = L.with_truthful_flags t' in
    let has_2cd =
      List.exists
        (fun (v : C.violation) -> v.C.rule = "2c" || v.C.rule = "2d")
        (C.violations ~delta:3 t')
    in
    if has_2cd then begin
      found := true;
      let sol, _ = NP.prove ~delta:3 ~n:(G.n t'.L.graph) t' in
      check "chain proof valid" true (NP.is_valid ~delta:3 t' sol)
    end
  done;
  check "found a 2c/2d corruption" true !found

let test_corrupt_all_kinds_invalidate () =
  let rng = Random.State.make [| 53 |] in
  List.iter
    (fun kind ->
      (* most kinds invalidate immediately; a few may need a retry *)
      let rec try_once n =
        if n = 0 then false
        else begin
          let t = B.gadget ~delta:3 ~height:4 in
          let t' = Corrupt.apply rng kind t in
          (not (C.is_valid ~delta:3 t')) || try_once (n - 1)
        end
      in
      check (Format.asprintf "%a invalidates" Corrupt.pp_kind kind) true
        (try_once 10))
    Corrupt.all_kinds

(* [Check.node_bad] is the allocation-free twin of
   [node_violations <> []] used by the verifier hot path; keep them in
   lockstep on valid gadgets and on every corruption kind *)
let test_node_bad_matches_violations () =
  let agree name t =
    for u = 0 to G.n t.L.graph - 1 do
      check
        (Printf.sprintf "%s node %d" name u)
        (C.node_violations ~delta:3 t u <> [])
        (C.node_bad ~delta:3 t u)
    done
  in
  agree "valid h8" (B.gadget ~delta:3 ~height:8);
  let rng = Random.State.make [| 7 |] in
  for rep = 0 to 9 do
    List.iter
      (fun kind ->
        let t = B.gadget ~delta:3 ~height:4 in
        let t' = Corrupt.apply rng kind t in
        agree
          (Format.asprintf "rep %d %a" rep Corrupt.pp_kind kind)
          t')
      Corrupt.all_kinds
  done

let prop_corrupt_always_proved =
  QCheck.Test.make ~name:"every corruption admits a valid ne proof" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let t = B.gadget ~delta:3 ~height:3 in
      let t', _ = Corrupt.random rng t in
      let sol, _ = NP.prove ~delta:3 ~n:(G.n t'.L.graph) t' in
      NP.is_valid ~delta:3 t' sol)

let prop_verifier_matches_check =
  QCheck.Test.make ~name:"V says all-ok iff Check says valid" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let t = B.gadget ~delta:3 ~height:3 in
      let t' = if seed mod 3 = 0 then t else fst (Corrupt.random rng t) in
      let out, _ = V.run ~delta:3 ~n:(G.n t'.L.graph) t' in
      V.is_all_ok out = C.is_valid ~delta:3 t')

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_corrupt_always_proved; prop_verifier_matches_check ]

let suite =
  [
    ("sizes", `Quick, test_sizes);
    ("valid gadgets pass", `Quick, test_valid_gadgets_pass);
    ("ports exist", `Quick, test_ports_exist);
    ("center structure", `Quick, test_center_structure);
    ("diameter logarithmic", `Quick, test_diameter_logarithmic);
    ("input coloring valid", `Quick, test_input_coloring_valid);
    ("follow", `Quick, test_follow);
    ("rule 1a self-loop", `Quick, test_rule_1a_self_loop);
    ("rule 1b duplicate labels", `Quick, test_rule_1b_duplicate_labels);
    ("rule 1c wrong index", `Quick, test_rule_1c_wrong_index);
    ("rule 1d port mismatch", `Quick, test_rule_1d_port_mismatch);
    ("rule 2a left-right", `Quick, test_rule_2a_left_right);
    ("rule 2b parent-child", `Quick, test_rule_2b_parent_child);
    ("rule 2c broken square", `Quick, test_rule_2c_broken_square);
    ("rule 3e root shape", `Quick, test_rule_3e_root_shape);
    ("rule 3f single child", `Quick, test_rule_3f_single_child);
    ("rule 3h fake port", `Quick, test_rule_3h_fake_port);
    ("rule 3h dropped port", `Quick, test_rule_3h_dropped_port);
    ("rule c2a center degree", `Quick, test_rule_c2a_center_degree);
    ("rule c2d duplicate sub-gadget", `Quick, test_rule_c2d_duplicate_subgadget);
    ("rule fl stale flags", `Quick, test_rule_fl_stale_flags);
    ("Lemma 7 wraparound", `Quick, test_lemma7_wraparound);
    ("V ok on valid", `Quick, test_v_ok_on_valid);
    ("V radius grows", `Quick, test_v_radius_grows_with_size);
    ("V proofs on corruptions", `Quick, test_v_proofs_on_corruptions);
    ("Psi rejects naked error", `Quick, test_psi_rejects_naked_error);
    ("Psi rejects mixed ok", `Quick, test_psi_rejects_mixed_ok);
    ("Lemma 9 pointer attempts", `Quick, test_psi_lemma9_all_pointer_attempts);
    ("Lemma 9 exhaustive small", `Slow, test_psi_lemma9_exhaustive_small);
    ("ne valid gadgets", `Quick, test_ne_valid_gadgets);
    ("ne proofs on corruptions", `Quick, test_ne_proofs_on_corruptions);
    ("ne forged witness rejected", `Quick, test_ne_forged_witness_rejected);
    ("ne forged witness with mirrors", `Quick, test_ne_forged_witness_with_mirrors_rejected);
    ("ne forged chain rejected", `Quick, test_ne_forged_chain_rejected);
    ("ne parallel-edge color proof", `Quick, test_ne_parallel_edge_color_proof);
    ("ne chain proof used", `Quick, test_ne_chain_proof_used);
    ("corrupt kinds invalidate", `Quick, test_corrupt_all_kinds_invalidate);
    ("node_bad matches node_violations", `Quick, test_node_bad_matches_violations);
  ]
  @ qcheck_tests
