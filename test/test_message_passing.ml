(* Tests for the synchronous message-passing engine and the distributed
   LCL checker built on it. *)

module G = Repro_graph.Multigraph
module Gen = Repro_graph.Generators
module Instance = Repro_local.Instance
module MP = Repro_local.Message_passing
module DC = Repro_lcl.Distributed_check
module Labeling = Repro_lcl.Labeling
module SO = Repro_problems.Sinkless_orientation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* an algorithm that computes each node's eccentricity by flooding ids:
   halt when a round brings nothing new, output rounds-to-quiescence *)
let ecc_algorithm : (int list * int, int list, int) MP.algorithm =
  {
    MP.init = (fun inst v -> ([ Instance.id inst v ], 0));
    send = (fun (known, _) ~round:_ ~port:_ -> known);
    receive =
      (fun (known, stable) ~round:_ msgs ->
        let fresh =
          Array.fold_left
            (fun acc l -> List.filter (fun x -> not (List.mem x known)) l @ acc)
            [] msgs
          |> List.sort_uniq compare
        in
        if fresh = [] then Either.Right stable
        else Either.Left (fresh @ known, stable + 1));
  }

let test_ecc_path () =
  let g = Gen.path 7 in
  let inst = Instance.create g in
  let r = MP.run inst ecc_algorithm in
  (* the middle node hears everything after 3 rounds; endpoints need 6 *)
  check_int "middle" 3 r.MP.outputs.(3);
  check_int "endpoint" 6 r.MP.outputs.(0);
  check "max >= per-node" true (r.MP.max_rounds >= r.MP.rounds.(0) - 1)

let test_ecc_cycle () =
  let g = Gen.cycle 8 in
  let inst = Instance.create g in
  let r = MP.run inst ecc_algorithm in
  Array.iter (fun o -> check_int "all nodes ecc 4" 4 o) r.MP.outputs

let test_ecc_disconnected () =
  let g = Gen.disjoint_union [ Gen.path 3; Gen.empty 1 ] in
  let inst = Instance.create g in
  let r = MP.run inst ecc_algorithm in
  check_int "isolated halts immediately" 0 r.MP.outputs.(3)

let test_self_loop_delivery () =
  (* a node with a self-loop receives its own message *)
  let g = G.of_edges ~n:1 [ (0, 0) ] in
  let inst = Instance.create g in
  let alg : (unit, string, bool) MP.algorithm =
    {
      MP.init = (fun _ _ -> ());
      send = (fun () ~round:_ ~port -> Printf.sprintf "port%d" port);
      receive =
        (fun () ~round:_ msgs ->
          (* message into port 0 arrives at port 1 and vice versa *)
          Either.Right (msgs.(0) = "port1" && msgs.(1) = "port0"));
    }
  in
  let r = MP.run inst alg in
  check "loop delivery crossed" true r.MP.outputs.(0)

let test_divergence_detected () =
  let g = Gen.cycle 3 in
  let inst = Instance.create g in
  let never : (unit, unit, unit) MP.algorithm =
    {
      MP.init = (fun _ _ -> ());
      send = (fun () ~round:_ ~port:_ -> ());
      receive = (fun () ~round:_ _ -> Either.Left ());
    }
  in
  check "diverging algorithm detected" true
    (try
       ignore (MP.run ~limit:10 inst never);
       false
     with Failure _ -> true)

let test_flood_gather_distances () =
  let g = Gen.path 5 in
  let inst = Instance.create g in
  let by_round = MP.flood_gather inst ~radius:3 (fun v -> v) in
  (* node 0 hears 1 in round 0(=distance 1), 2 at distance 2, 3 at 3 *)
  check "d1" true (by_round.(0).(0) = [ 1 ]);
  check "d2" true (by_round.(0).(1) = [ 2 ]);
  check "d3" true (by_round.(0).(2) = [ 3 ]);
  (* middle node hears both sides in round 0 *)
  check "middle d1" true (List.sort compare by_round.(2).(0) = [ 1; 3 ])

let test_flood_matches_ball () =
  let rng = Random.State.make [| 5 |] in
  let g = Gen.random_regular rng ~n:60 ~d:3 in
  let inst = Instance.create g in
  let radius = 3 in
  let by_round = MP.flood_gather inst ~radius (fun v -> v) in
  for v = 0 to 9 do
    let ball = Repro_local.Ball.gather g ~center:v ~radius in
    let heard =
      v
      :: List.concat (Array.to_list (Array.map (fun l -> l) by_round.(v)))
      |> List.sort_uniq compare
    in
    let ball_nodes = Array.to_list ball.Repro_local.Ball.to_global |> List.sort compare in
    check (Printf.sprintf "flood = ball at %d" v) true (heard = ball_nodes)
  done

(* distributed checker *)

let test_dc_accepts_valid () =
  let rng = Random.State.make [| 6 |] in
  let g = SO.hard_instance rng ~n:300 in
  let inst = Instance.create g in
  let out, _ = SO.solve_deterministic inst in
  let v = DC.run SO.problem inst ~input:(SO.trivial_input g) ~output:out in
  check "accepts" true v.DC.all_accept;
  check_int "one round" 1 v.DC.rounds

let test_dc_rejects_locally () =
  let rng = Random.State.make [| 7 |] in
  let g = SO.hard_instance rng ~n:300 in
  let inst = Instance.create g in
  let out, _ = SO.solve_deterministic inst in
  (* make node u a sink: orient all its halves In, far sides Out *)
  let u = 5 in
  Array.iter
    (fun h ->
      out.Labeling.b.(h) <- SO.In;
      out.Labeling.b.(G.mate h) <- SO.Out)
    (G.halves g u);
  let v = DC.run SO.problem inst ~input:(SO.trivial_input g) ~output:out in
  check "rejects" false v.DC.all_accept;
  check "u itself rejects" false v.DC.accepts.(u);
  (* far away nodes still accept: rejection is local *)
  let far =
    let d = Repro_graph.Traversal.bfs g u in
    let best = ref u in
    Array.iteri (fun w dw -> if dw > d.(!best) then best := w) d;
    !best
  in
  check "far node accepts" true v.DC.accepts.(far)

let test_dc_matches_centralized () =
  let rng = Random.State.make [| 8 |] in
  for seed = 1 to 10 do
    let g = SO.hard_instance rng ~n:100 in
    let inst = Instance.create ~seed g in
    let out, _ = SO.solve_randomized inst in
    (* random mutation half the time *)
    if seed mod 2 = 0 then begin
      let h = Random.State.int rng (2 * G.m g) in
      out.Labeling.b.(h) <-
        (match out.Labeling.b.(h) with SO.Out -> SO.In | SO.In -> SO.Out)
    end;
    let input = SO.trivial_input g in
    let dist = DC.run SO.problem inst ~input ~output:out in
    let central = Repro_lcl.Ne_lcl.is_valid SO.problem g ~input ~output:out in
    check (Printf.sprintf "agree seed %d" seed) central dist.DC.all_accept
  done

let prop_dc_equals_central =
  QCheck.Test.make ~name:"distributed = centralized verdict" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.random_regular rng ~n:30 ~d:4 in
      let inst = Instance.create g in
      let out, _ = SO.solve_deterministic inst in
      (* corrupt 0-2 halves *)
      for _ = 1 to seed mod 3 do
        let h = Random.State.int rng (2 * G.m g) in
        out.Labeling.b.(h) <- (if Random.State.bool rng then SO.Out else SO.In)
      done;
      let input = SO.trivial_input g in
      let dist = DC.run SO.problem inst ~input ~output:out in
      dist.DC.all_accept
      = Repro_lcl.Ne_lcl.is_valid SO.problem g ~input ~output:out)

(* ------------------------------------------------------------------ *)
(* flat-engine goldens and arena-mailbox semantics                     *)
(* ------------------------------------------------------------------ *)

module Pool = Repro_local.Pool
module Obs = Repro_obs

let with_sizes f =
  Fun.protect
    ~finally:(fun () -> Pool.set_size 1)
    (fun () ->
      List.iter
        (fun s ->
          Pool.set_size s;
          f s)
        [ 1; 2; 4 ])

(* a fixed 24-node 3-regular fixture; the goldens below were pinned from
   the boxed (pre-arena) engine, so the flat engine must reproduce them
   bit-for-bit at every pool size *)
let ecc24_graph () = Gen.random_regular (Random.State.make [| 9 |]) ~n:24 ~d:3

let ecc24_outputs =
  [| 5; 5; 6; 4; 4; 5; 4; 5; 5; 5; 5; 4; 6; 4; 6; 5; 4; 5; 4; 4; 5; 6; 4; 5 |]

let ecc24_rounds =
  [| 6; 6; 7; 5; 5; 6; 5; 6; 6; 6; 6; 5; 7; 5; 7; 6; 5; 6; 5; 5; 6; 7; 5; 6 |]

let test_golden_ecc24 () =
  let inst = Instance.create (ecc24_graph ()) in
  with_sizes (fun s ->
      let r = MP.run inst ecc_algorithm in
      check (Printf.sprintf "outputs, %d domains" s) true
        (r.MP.outputs = ecc24_outputs);
      check (Printf.sprintf "rounds, %d domains" s) true
        (r.MP.rounds = ecc24_rounds);
      check_int (Printf.sprintf "max_rounds, %d domains" s) 7 r.MP.max_rounds)

let test_golden_flood24 () =
  let inst = Instance.create (ecc24_graph ()) in
  with_sizes (fun s ->
      let by_round = MP.flood_gather inst ~radius:3 (fun v -> v) in
      let at d = List.sort compare by_round.(0).(d) in
      check (Printf.sprintf "node 0 d1, %d domains" s) true
        (at 0 = [ 1; 16; 17 ]);
      check (Printf.sprintf "node 0 d2, %d domains" s) true
        (at 1 = [ 3; 5; 10; 11 ]);
      check (Printf.sprintf "node 0 d3, %d domains" s) true
        (at 2 = [ 2; 6; 7; 12; 13; 18; 19; 22 ]))

(* when a node halts, the engine must keep delivering its LAST sent
   message: the arena slot stays valid (epoch >= 0) and is simply not
   rewritten. Node 0 halts in round 0 after sending 100*round + id = 0;
   node 1 keeps running and must read 0 (not a fresh send, not garbage)
   in every later round. *)
let test_halted_message_repeats () =
  let g = Gen.path 2 in
  let inst = Instance.create g in
  let alg : (int * int list, int, int list) MP.algorithm =
    {
      MP.init = (fun _ v -> (v, []));
      send = (fun (v, _) ~round ~port:_ -> (100 * round) + v);
      receive =
        (fun (v, acc) ~round msgs ->
          if v = 0 then Either.Right []
          else
            let acc = msgs.(0) :: acc in
            if round = 2 then Either.Right (List.rev acc)
            else Either.Left (v, acc));
    }
  in
  let r = MP.run inst alg in
  check "halted neighbor's last message repeats" true
    (r.MP.outputs.(1) = [ 0; 0; 0 ])

(* the boxed engine is kept as a differential oracle; the two engines
   must agree exactly on a nontrivial run *)
let test_flat_matches_boxed () =
  let inst = Instance.create (ecc24_graph ()) in
  let a = MP.run inst ecc_algorithm in
  let b = MP.run_boxed inst ecc_algorithm in
  check "outputs" true (a.MP.outputs = b.MP.outputs);
  check "rounds" true (a.MP.rounds = b.MP.rounds);
  check_int "max_rounds" b.MP.max_rounds a.MP.max_rounds

(* traced flood telemetry: the flat flood rebuilds the per-node
   knowledge lists only when the registry is live, and the resulting
   byte counts must equal the boxed engine's (goldens pinned before the
   rewrite). Telemetry rounds are deterministic for every pool size. *)
let flood_trace_rounds inst ~radius =
  let _, events =
    Obs.Trace.record (fun () -> MP.flood_gather inst ~radius (fun v -> v))
  in
  Obs.Registry.disable ();
  List.filter_map
    (function
      | Obs.Trace.Round r when r.Obs.Trace.engine = "flood_gather" ->
        Some
          (r.Obs.Trace.messages, r.Obs.Trace.payload_bytes, r.Obs.Trace.mailbox_max)
      | _ -> None)
    events

let test_traced_flood_bytes_regular () =
  let rng = Random.State.make [| 5 |] in
  let g = Gen.random_regular rng ~n:60 ~d:3 in
  let inst = Instance.create g in
  with_sizes (fun s ->
      let rounds = flood_trace_rounds inst ~radius:4 in
      check (Printf.sprintf "golden rounds, %d domains" s) true
        (rounds
        = [
            (180, 4320, 3); (180, 17136, 3); (180, 40752, 3); (180, 81936, 3);
          ]))

let test_traced_flood_bytes_path () =
  let inst = Instance.create (Gen.path 5) in
  with_sizes (fun s ->
      let rounds = flood_trace_rounds inst ~radius:3 in
      check (Printf.sprintf "golden rounds, %d domains" s) true
        (rounds = [ (8, 192, 2); (8, 528, 2); (8, 768, 2) ]))

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_dc_equals_central ]

let suite =
  [
    ("eccentricity on path", `Quick, test_ecc_path);
    ("eccentricity on cycle", `Quick, test_ecc_cycle);
    ("disconnected", `Quick, test_ecc_disconnected);
    ("self-loop delivery", `Quick, test_self_loop_delivery);
    ("divergence detected", `Quick, test_divergence_detected);
    ("flood distances", `Quick, test_flood_gather_distances);
    ("flood matches ball", `Quick, test_flood_matches_ball);
    ("checker accepts valid", `Quick, test_dc_accepts_valid);
    ("checker rejects locally", `Quick, test_dc_rejects_locally);
    ("checker matches centralized", `Quick, test_dc_matches_centralized);
    ("golden ecc24 across pool sizes", `Quick, test_golden_ecc24);
    ("golden flood24 across pool sizes", `Quick, test_golden_flood24);
    ("halted node's message repeats", `Quick, test_halted_message_repeats);
    ("flat engine matches boxed oracle", `Quick, test_flat_matches_boxed);
    ("traced flood bytes (3-regular)", `Quick, test_traced_flood_bytes_regular);
    ("traced flood bytes (path)", `Quick, test_traced_flood_bytes_path);
  ]
  @ qcheck_tests
