(* The fuzz subsystem's own suite: PRNG and shrinker laws, replay and
   determinism contracts, the target registry, and the acceptance test
   for the differential oracles — a deliberately planted checker bug
   (Oracle.planted_bug) must be caught and shrunk to a tiny
   counterexample with a usable replay seed. *)

module Rng = Repro_fuzz.Rng
module Shrink = Repro_fuzz.Shrink
module Gen = Repro_fuzz.Gen
module Prop = Repro_fuzz.Prop
module Oracle = Repro_fuzz.Oracle
module Targets = Repro_fuzz.Targets
module Json = Repro_obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* splittable PRNG *)

let test_rng_deterministic () =
  let draw t = List.init 20 (fun _ -> fst (Rng.next_int64 t)) in
  (* the state is immutable: drawing from equal states gives equal runs *)
  check "same seed, same stream" true
    (draw (Rng.of_seed 7) = draw (Rng.of_seed 7));
  check "different seeds differ" true
    (draw (Rng.of_seed 7) <> draw (Rng.of_seed 8))

let test_rng_split_independent () =
  let t = Rng.of_seed 7 in
  let l, r = Rng.split t in
  check "split streams differ" true (fst (Rng.next_int64 l) <> fst (Rng.next_int64 r));
  (* forked streams are reproducible and pairwise distinct *)
  let forks = List.init 10 (fun i -> fst (Rng.next_int64 (Rng.fork t i))) in
  check "forks reproducible" true
    (forks = List.init 10 (fun i -> fst (Rng.next_int64 (Rng.fork t i))));
  check "forks pairwise distinct" true
    (List.length (List.sort_uniq compare forks) = 10)

let test_rng_int_in_bounds () =
  let t = ref (Rng.of_seed 99) in
  for _ = 1 to 1000 do
    let v, t' = Rng.int_in !t ~lo:(-5) ~hi:17 in
    t := t';
    check "int_in bounds" true (v >= -5 && v <= 17)
  done

(* ------------------------------------------------------------------ *)
(* shrinking: failures reach the boundary of the law *)

let run_shrunk ?(count = 200) ?(seed = 42) prop =
  match (Prop.run ~count ~seed prop).Prop.r_failure with
  | None -> Alcotest.fail "property unexpectedly passed"
  | Some f -> f

let test_shrink_int_to_boundary () =
  let p =
    Prop.make ~name:"x < 10" ~show:string_of_int (Gen.int_range 0 1000)
      (Prop.law_bool (fun x -> x < 10))
  in
  let f = run_shrunk p in
  (* integrated shrinking must land exactly on the smallest violation *)
  check_str "minimal counterexample" "10" f.Prop.f_case

let test_shrink_pair_to_boundary () =
  let p =
    Prop.make ~name:"sum < 12"
      ~show:(fun (a, b) -> Printf.sprintf "(%d,%d)" a b)
      (Gen.pair (Gen.int_range 0 100) (Gen.int_range 0 100))
      (Prop.law_bool (fun (a, b) -> a + b < 12))
  in
  let f = run_shrunk p in
  (* the shrunk pair must still violate and sit on the boundary *)
  Scanf.sscanf f.Prop.f_case "(%d,%d)" (fun a b ->
      check_int "boundary sum" 12 (a + b))

let test_shrink_list_to_singleton () =
  let p =
    Prop.make ~name:"no element > 50"
      ~show:(fun l -> String.concat "," (List.map string_of_int l))
      (Gen.list ~min:0 ~max:15 (Gen.int_range 0 100))
      (Prop.law_bool (List.for_all (fun x -> x <= 50)))
  in
  let f = run_shrunk p in
  check_str "single minimal element" "51" f.Prop.f_case

(* ------------------------------------------------------------------ *)
(* runner contracts: determinism and replay *)

let test_case_seed_identity () =
  check_int "case 0 replays the run seed" 42 (Prop.case_seed 42 0);
  check "derived seeds distinct" true
    (let l = List.init 100 (Prop.case_seed 42) in
     List.length (List.sort_uniq compare l) = 100);
  check "derived seeds non-negative" true
    (List.for_all (fun i -> Prop.case_seed 42 i >= 0) (List.init 100 Fun.id))

let failing_prop =
  Prop.make ~name:"x < 900" ~show:string_of_int (Gen.int_range 0 1000)
    (Prop.law_bool (fun x -> x < 900))

let test_run_deterministic () =
  let a = Prop.run ~count:100 ~seed:5 failing_prop in
  let b = Prop.run ~count:100 ~seed:5 failing_prop in
  check "identical reports" true (a = b);
  let c = Prop.run ~count:100 ~seed:6 failing_prop in
  check "seed is load-bearing" true (a.Prop.r_seed <> c.Prop.r_seed)

let test_replay_reproduces () =
  let f = run_shrunk ~count:100 ~seed:5 failing_prop in
  (* one case at the reported replay seed regenerates the same failure *)
  let r = Prop.run ~count:1 ~seed:f.Prop.f_replay_seed failing_prop in
  match r.Prop.r_failure with
  | None -> Alcotest.fail "replay seed did not reproduce the failure"
  | Some f' ->
    check_str "same shrunk counterexample" f.Prop.f_case f'.Prop.f_case;
    check_int "replay case index 0" 0 f'.Prop.f_index

(* ------------------------------------------------------------------ *)
(* target registry *)

let test_targets_registered () =
  check "at least the documented nine" true (List.length Targets.all >= 9);
  List.iter
    (fun name ->
      check ("target " ^ name) true (Targets.find name <> None))
    [ "so"; "colorful"; "two-coloring"; "decompose"; "dcheck"; "engines";
      "engine-frontier-vs-flat"; "gadget"; "padding"; "provenance" ];
  check "unknown name rejected" true (Targets.find "nonesuch" = None)

let test_targets_pass_and_deterministic () =
  List.iter
    (fun t ->
      let a = Targets.run t ~count:25 ~seed:42 in
      (match a.Prop.r_failure with
      | None -> ()
      | Some _ ->
        Alcotest.fail
          (Format.asprintf "target %s: %a" t.Targets.t_name Prop.pp_report a));
      let b = Targets.run t ~count:25 ~seed:42 in
      check (t.Targets.t_name ^ " deterministic") true (a = b))
    Targets.all

let test_json_summary_round_trips () =
  let reports =
    List.map (fun t -> Targets.run t ~count:5 ~seed:42) Targets.all
  in
  let doc = Targets.json_summary ~seed:42 ~count:5 reports in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.fail ("summary does not re-parse: " ^ e)
  | Ok j ->
    check "schema tag" true
      (Json.member "schema" j = Some (Json.String "repro-fuzz/1"));
    check "all ok" true (Json.member "ok" j = Some (Json.Bool true))

(* ------------------------------------------------------------------ *)
(* acceptance: a planted checker bug is caught, shrunk small, replayable *)

let with_planted_bug bug f =
  let saved = !Oracle.planted_bug in
  Fun.protect
    ~finally:(fun () -> Oracle.planted_bug := saved)
    (fun () ->
      Oracle.planted_bug := Some bug;
      f ())

let test_planted_bug_caught_and_shrunk () =
  check "bug name registered" true
    (List.mem "so-edge-clause" Oracle.known_bugs);
  with_planted_bug "so-edge-clause" @@ fun () ->
  let t =
    match Targets.find "dcheck" with
    | Some t -> t
    | None -> Alcotest.fail "dcheck target missing"
  in
  let r = Targets.run t ~count:200 ~seed:42 in
  match r.Prop.r_failure with
  | None -> Alcotest.fail "planted so-edge-clause bug was not caught"
  | Some f ->
    (* the acceptance bar: shrunk to a counterexample of at most 12
       nodes, with a replay seed that reproduces it *)
    (match f.Prop.f_size with
    | None -> Alcotest.fail "no size metric on the counterexample"
    | Some size ->
      check ("shrunk to <= 12 nodes, got " ^ string_of_int size) true
        (size <= 12));
    check "reason names the disagreement" true
      (String.length f.Prop.f_reason > 0);
    let replay = Targets.run t ~count:1 ~seed:f.Prop.f_replay_seed in
    (match replay.Prop.r_failure with
    | None -> Alcotest.fail "replay seed did not reproduce the bug"
    | Some f' ->
      check_str "replay reaches the same counterexample" f.Prop.f_case
        f'.Prop.f_case)

let test_planted_bug_off_by_default () =
  check "no bug planted in normal runs" true (!Oracle.planted_bug = None
                                              || Sys.getenv_opt "REPRO_FUZZ_BREAK" <> None)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng split/fork independent", `Quick, test_rng_split_independent);
    ("rng int_in bounds", `Quick, test_rng_int_in_bounds);
    ("shrink int to boundary", `Quick, test_shrink_int_to_boundary);
    ("shrink pair to boundary", `Quick, test_shrink_pair_to_boundary);
    ("shrink list to singleton", `Quick, test_shrink_list_to_singleton);
    ("case_seed contract", `Quick, test_case_seed_identity);
    ("runs deterministic", `Quick, test_run_deterministic);
    ("replay reproduces", `Quick, test_replay_reproduces);
    ("targets registered", `Quick, test_targets_registered);
    ("all targets pass, deterministically", `Slow, test_targets_pass_and_deterministic);
    ("json summary round-trips", `Quick, test_json_summary_round_trips);
    ("planted bug caught, shrunk, replayable", `Slow, test_planted_bug_caught_and_shrunk);
    ("planted bug off by default", `Quick, test_planted_bug_off_by_default);
  ]
