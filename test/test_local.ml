(* Tests for the LOCAL-model simulator: identifiers, randomness, meters,
   ball views, instances. *)

module G = Repro_graph.Multigraph
module Gen = Repro_graph.Generators
module Ids = Repro_local.Ids
module Randomness = Repro_local.Randomness
module Meter = Repro_local.Meter
module Ball = Repro_local.Ball
module Instance = Repro_local.Instance

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ids *)

let test_ids_sequential () =
  let ids = Ids.sequential 5 in
  check "valid" true (Ids.is_valid ~n:5 ids);
  check_int "first" 1 ids.(0);
  check_int "last" 5 ids.(4)

let test_ids_random_permutation () =
  let rng = Random.State.make [| 3 |] in
  let ids = Ids.random_permutation rng 100 in
  check "valid" true (Ids.is_valid ~n:100 ids);
  let sorted = Array.copy ids in
  Array.sort compare sorted;
  check "is permutation" true (sorted = Ids.sequential 100)

let test_ids_spread () =
  let rng = Random.State.make [| 4 |] in
  let ids = Ids.spread rng 50 in
  check "valid" true (Ids.is_valid ~n:50 ids);
  check "within square bound" true (Array.for_all (fun x -> x <= 2500) ids)

let test_ids_adversarial () =
  let g = Gen.path 10 in
  let ids = Ids.adversarial_bfs g in
  check "valid" true (Ids.is_valid ~n:10 ids);
  (* BFS from node 0 on a path = increasing along the path *)
  for v = 0 to 9 do
    check_int "bfs order" (v + 1) ids.(v)
  done

let test_ids_invalid () =
  check "duplicate rejected" false (Ids.is_valid ~n:3 [| 1; 1; 2 |]);
  check "zero rejected" false (Ids.is_valid ~n:3 [| 0; 1; 2 |]);
  check "too large rejected" false (Ids.is_valid ~n:3 [| 1; 2; 100 |])

(* randomness *)

let test_randomness_deterministic () =
  let r1 = Randomness.create ~seed:7 in
  let r2 = Randomness.create ~seed:7 in
  for node = 0 to 5 do
    for idx = 0 to 5 do
      check "reproducible" true
        (Randomness.bits64 r1 ~node ~idx = Randomness.bits64 r2 ~node ~idx)
    done
  done

let test_randomness_varies () =
  let r = Randomness.create ~seed:7 in
  let distinct = Hashtbl.create 64 in
  for node = 0 to 7 do
    for idx = 0 to 7 do
      Hashtbl.replace distinct (Randomness.bits64 r ~node ~idx) ()
    done
  done;
  check "no obvious collisions" true (Hashtbl.length distinct = 64)

let test_randomness_seed_matters () =
  let r1 = Randomness.create ~seed:1 in
  let r2 = Randomness.create ~seed:2 in
  check "different seeds differ" true
    (Randomness.bits64 r1 ~node:0 ~idx:0 <> Randomness.bits64 r2 ~node:0 ~idx:0)

let test_randomness_bounds () =
  let r = Randomness.create ~seed:11 in
  for i = 0 to 100 do
    let x = Randomness.int r ~node:i ~idx:0 ~bound:10 in
    check "int in range" true (x >= 0 && x < 10);
    let f = Randomness.float r ~node:i ~idx:1 in
    check "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_randomness_bit_balance () =
  let r = Randomness.create ~seed:5 in
  let ones = ref 0 in
  for i = 0 to 9999 do
    if Randomness.bit r ~node:i ~idx:0 then incr ones
  done;
  check "roughly balanced" true (!ones > 4500 && !ones < 5500)

(* meter *)

let test_meter () =
  let m = Meter.create 4 in
  Meter.charge m 0 3;
  Meter.charge m 0 1;
  (* lower charge ignored *)
  Meter.charge m 2 5;
  check_int "max kept" 3 (Meter.radius m 0);
  check_int "untouched" 0 (Meter.radius m 1);
  check_int "max radius" 5 (Meter.max_radius m);
  Meter.charge_all m 4;
  check_int "charge_all raises" 4 (Meter.radius m 1);
  check_int "charge_all keeps higher" 5 (Meter.radius m 2);
  let hist = Meter.histogram m in
  check_int "histogram buckets" 2 (List.length hist)

let test_meter_histogram_contents () =
  let m = Meter.create 6 in
  (* radii: [3; 0; 5; 0; 3; 3] *)
  Meter.charge m 0 3;
  Meter.charge m 2 5;
  Meter.charge m 4 3;
  Meter.charge m 5 3;
  Alcotest.(check (list (pair int int)))
    "exact buckets, ascending"
    [ (0, 2); (3, 3); (5, 1) ]
    (Meter.histogram m);
  check "mean radius" true (abs_float (Meter.mean_radius m -. 14.0 /. 6.0) < 1e-9)

let test_meter_empty () =
  let m = Meter.create 0 in
  check_int "max radius of empty meter" 0 (Meter.max_radius m);
  Alcotest.(check (list (pair int int))) "empty histogram" [] (Meter.histogram m);
  check "empty mean is finite" true (Meter.mean_radius m = 0.0)

(* ball *)

let test_ball_path () =
  let g = Gen.path 10 in
  let b = Ball.gather g ~center:5 ~radius:2 in
  check_int "size" 5 (G.n b.Ball.graph);
  check_int "center dist" 0 b.Ball.dist.(b.Ball.center);
  check "incomplete" false b.Ball.complete;
  check "member" true (Ball.mem_global b 3);
  check "non-member" false (Ball.mem_global b 2)

let test_ball_whole_component () =
  let g = Gen.cycle 6 in
  let b = Ball.gather g ~center:0 ~radius:3 in
  check_int "whole cycle" 6 (G.n b.Ball.graph);
  check "complete" true b.Ball.complete

let test_ball_preserves_structure () =
  let g = Gen.complete 5 in
  let b = Ball.gather g ~center:0 ~radius:1 in
  check_int "all nodes" 5 (G.n b.Ball.graph);
  check_int "all edges" 10 (G.m b.Ball.graph)

let test_ball_dist () =
  let g = Gen.balanced_tree ~arity:2 ~height:3 in
  let b = Ball.gather g ~center:0 ~radius:2 in
  check_int "size" 7 (G.n b.Ball.graph);
  Array.iteri
    (fun l d ->
      let glob = b.Ball.to_global.(l) in
      let expected = if glob = 0 then 0 else if glob <= 2 then 1 else 2 in
      check_int "distance" expected d)
    b.Ball.dist

(* instance *)

let test_instance_defaults () =
  let g = Gen.cycle 5 in
  let inst = Instance.create g in
  check_int "n" 5 (Instance.n inst);
  check_int "promise" 5 inst.Instance.n_promise;
  check_int "id" 3 (Instance.id inst 2)

let test_instance_promise () =
  let g = Gen.cycle 5 in
  let inst = Instance.create ~n_promise:100 g in
  check_int "promise" 100 inst.Instance.n_promise

let test_instance_with_seed () =
  let g = Gen.cycle 5 in
  let inst = Instance.create ~seed:1 g in
  let inst2 = Instance.with_seed inst 2 in
  check_int "seed updated" 2 inst2.Instance.seed;
  check "randomness differs" true
    (Randomness.bits64 inst.Instance.rand ~node:0 ~idx:0
    <> Randomness.bits64 inst2.Instance.rand ~node:0 ~idx:0)

let test_instance_rejects_bad_ids () =
  let g = Gen.cycle 3 in
  check "rejects duplicates" true
    (try
       ignore (Instance.create ~ids:[| 1; 1; 2 |] g);
       false
     with Invalid_argument _ -> true)

(* properties *)

let prop_ball_radius =
  QCheck.Test.make ~name:"ball contains exactly the radius-r nodes" ~count:100
    QCheck.(pair (int_range 3 25) (int_range 0 5))
    (fun (n, r) ->
      let g = Gen.cycle n in
      let b = Ball.gather g ~center:0 ~radius:r in
      let expected = min n ((2 * r) + 1) in
      G.n b.Ball.graph = expected
      && Array.for_all (fun d -> d <= r) b.Ball.dist)

let prop_ids_always_valid =
  QCheck.Test.make ~name:"generated ids are always valid" ~count:50
    QCheck.(int_range 1 200)
    (fun n ->
      let rng = Random.State.make [| n |] in
      Ids.is_valid ~n (Ids.sequential n)
      && Ids.is_valid ~n (Ids.random_permutation rng n)
      && Ids.is_valid ~n (Ids.spread rng n))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_ball_radius; prop_ids_always_valid ]

let suite =
  [
    ("ids sequential", `Quick, test_ids_sequential);
    ("ids random permutation", `Quick, test_ids_random_permutation);
    ("ids spread", `Quick, test_ids_spread);
    ("ids adversarial", `Quick, test_ids_adversarial);
    ("ids invalid", `Quick, test_ids_invalid);
    ("randomness deterministic", `Quick, test_randomness_deterministic);
    ("randomness varies", `Quick, test_randomness_varies);
    ("randomness seed matters", `Quick, test_randomness_seed_matters);
    ("randomness bounds", `Quick, test_randomness_bounds);
    ("randomness bit balance", `Quick, test_randomness_bit_balance);
    ("meter", `Quick, test_meter);
    ("meter histogram contents", `Quick, test_meter_histogram_contents);
    ("meter empty", `Quick, test_meter_empty);
    ("ball path", `Quick, test_ball_path);
    ("ball whole component", `Quick, test_ball_whole_component);
    ("ball complete graph", `Quick, test_ball_preserves_structure);
    ("ball distances", `Quick, test_ball_dist);
    ("instance defaults", `Quick, test_instance_defaults);
    ("instance promise", `Quick, test_instance_promise);
    ("instance with_seed", `Quick, test_instance_with_seed);
    ("instance rejects bad ids", `Quick, test_instance_rejects_bad_ids);
  ]
  @ qcheck_tests
